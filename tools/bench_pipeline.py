#!/usr/bin/env python
"""Run the pipelined-invocation benchmark and emit BENCH_pipeline.json.

Usage::

    PYTHONPATH=src python tools/bench_pipeline.py                 # full sweep
    PYTHONPATH=src python tools/bench_pipeline.py --smoke         # CI subset
    PYTHONPATH=src python tools/bench_pipeline.py --smoke \\
        --gate 1.0                                  # depth-8 > depth-1 gate

The JSON carries a ``results`` list (one record per fabric × transfer
method × pipeline depth) plus ``speedups`` — the deepest-depth
throughput over the depth-1 (strictly serial) baseline for every
fabric × method pair.  ``--gate R`` fails (exit 1) when any pair's
speedup drops to R or below; absolute MB/s numbers are
machine-dependent and are never gated on, with one exception:

``--trace-overhead PCT`` re-runs the identical sweep with
``repro.trace`` recording enabled and fails when the traced run's
geometric-mean throughput falls more than PCT percent below the
untraced run — both halves measured back-to-back on the same machine,
so the comparison is portable.  ``--check-baseline PATH`` additionally
compares this (untraced) run against a saved BENCH_pipeline.json with
the same tolerance — only meaningful on the machine that produced the
baseline (it is how the disabled-by-default instrumentation fast path
was shown to cost <2%; see ``docs/performance.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.pipeline import (  # noqa: E402
    DEFAULT_DEPTHS,
    DEFAULT_REPEATS,
    DEFAULT_REQUESTS,
    DEFAULT_SERVICE_MS,
    DEFAULT_SIZE,
    SMOKE_DEPTHS,
    SMOKE_REQUESTS,
    SMOKE_SERVICE_MS,
    SMOKE_SIZE,
    format_pipeline,
    points_as_dicts,
    run_pipeline,
    speedups,
    throughput_ratio,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fabric",
        choices=["inproc", "socket", "both"],
        default="both",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small payload, depths 1 and 8 only (CI-friendly)",
    )
    parser.add_argument(
        "--rts",
        choices=["thread", "process"],
        default="thread",
        help="RTS backend for the client (process = forked client "
        "rank over TCP; implies --fabric socket)",
    )
    parser.add_argument("--size", type=int, default=None, help="bytes")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument(
        "--service-ms",
        type=float,
        default=None,
        help="per-request servant compute time the pipeline overlaps "
        "with transfer (default 20, smoke 20)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=DEFAULT_REPEATS,
        help="timed bursts per point; the best is reported",
    )
    parser.add_argument(
        "--depths",
        type=lambda s: [int(d) for d in s.split(",")],
        default=None,
        help="comma-separated pipeline depths",
    )
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        help="fail when any fabric x method speedup (deepest depth vs "
        "depth 1) is <= this ratio",
    )
    parser.add_argument(
        "--trace-overhead",
        type=float,
        default=None,
        metavar="PCT",
        help="re-run the sweep with repro.trace recording on and fail "
        "when it is more than PCT percent slower (geometric mean)",
    )
    parser.add_argument(
        "--check-baseline",
        type=Path,
        default=None,
        help="saved BENCH_pipeline.json to compare this run against "
        "(same-machine use; tolerance from --trace-overhead, "
        "default 2 percent)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write results JSON here",
    )
    args = parser.parse_args(argv)

    fabrics = (
        ["inproc", "socket"] if args.fabric == "both" else [args.fabric]
    )
    if args.rts == "process":
        # The in-process fabric cannot span OS processes.
        fabrics = ["socket"]
    depths = args.depths or (SMOKE_DEPTHS if args.smoke else DEFAULT_DEPTHS)
    size = args.size or (SMOKE_SIZE if args.smoke else DEFAULT_SIZE)
    requests = args.requests or (
        SMOKE_REQUESTS if args.smoke else DEFAULT_REQUESTS
    )
    service_ms = (
        args.service_ms
        if args.service_ms is not None
        else (SMOKE_SERVICE_MS if args.smoke else DEFAULT_SERVICE_MS)
    )

    points = []
    for fabric in fabrics:
        points.extend(
            run_pipeline(
                fabric,
                depths,
                size_bytes=size,
                requests=requests,
                service_ms=service_ms,
                repeats=args.repeats,
                rts_backend=args.rts,
            )
        )
    print(format_pipeline(points))

    ratios = speedups(points)
    failures = 0
    if args.gate is not None:
        print(f"\npipeline gate: speedup must exceed {args.gate:.2f}x")
        for (fabric, method), ratio in sorted(ratios.items()):
            verdict = "ok" if ratio > args.gate else "FAIL"
            if verdict == "FAIL":
                failures += 1
            print(
                f"  {fabric:<8} {method:<12} {ratio:>6.2f}x  {verdict}"
            )

    tolerance = (
        args.trace_overhead if args.trace_overhead is not None else 2.0
    )
    if args.trace_overhead is not None:
        traced = []
        for fabric in fabrics:
            traced.extend(
                run_pipeline(
                    fabric,
                    depths,
                    size_bytes=size,
                    requests=requests,
                    service_ms=service_ms,
                    repeats=args.repeats,
                    trace=True,
                    rts_backend=args.rts,
                )
            )
        ratio = throughput_ratio(traced, points)
        cost = (1.0 - ratio) * 100.0
        verdict = "ok" if cost < tolerance else "FAIL"
        if verdict == "FAIL":
            failures += 1
        print(
            f"\ntrace overhead (recording on vs off): {cost:+.2f}% "
            f"(gate <{tolerance:g}%)  {verdict}"
        )

    if args.check_baseline is not None:
        baseline = json.loads(args.check_baseline.read_text())
        ratio = throughput_ratio(points, baseline["results"])
        cost = (1.0 - ratio) * 100.0
        verdict = "ok" if cost < tolerance else "FAIL"
        if verdict == "FAIL":
            failures += 1
        print(
            f"vs baseline {args.check_baseline}: {cost:+.2f}% slower "
            f"(gate <{tolerance:g}%)  {verdict}"
        )

    if args.out is not None:
        payload = {
            "benchmark": "pipeline",
            "rts": args.rts,
            "units": {
                "mb_per_s": "payload MB per second, both directions",
                "speedups": (
                    "deepest-depth MB/s over depth-1 MB/s, per "
                    "fabric x transfer method"
                ),
            },
            "parameters": {
                "size_bytes": size,
                "requests": requests,
                "depths": depths,
                "service_ms": service_ms,
                "repeats": args.repeats,
            },
            "speedups": {
                f"{fabric}/{method}": ratio
                for (fabric, method), ratio in sorted(ratios.items())
            },
            "results": points_as_dicts(points),
        }
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.out}")

    if failures:
        print(f"{failures} fabric x method pair(s) failed the gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
