#!/usr/bin/env python
"""Run the client fan-in benchmark and emit BENCH_clients.json.

Usage::

    PYTHONPATH=src python tools/bench_clients.py               # full run
    PYTHONPATH=src python tools/bench_clients.py --smoke       # CI subset
    PYTHONPATH=src python tools/bench_clients.py --smoke \\
        --gate 0.8                          # flat-goodput gate

Sweeps simulated-client counts (100 → 10k full, 50 → 500 smoke)
against one event-loop server and records goodput per point: each
client is a distinct 64-bit identity running a window-1 closed loop
over a budgeted set of shared TCP connections.  ``--gate R`` fails
(exit 1) when any point records errors or drops below ``R`` times the
smallest point's goodput — the claim being gated is *flatness* of the
curve, never an absolute rate, so it is machine-independent.

See ``docs/scaling.md`` for the methodology.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.clients import (  # noqa: E402
    DEFAULT_CLIENTS,
    DEFAULT_CONNECTIONS,
    DEFAULT_DISPATCH_WORKERS,
    DEFAULT_MIN_RATIO,
    DEFAULT_REPEATS,
    DEFAULT_REQUESTS,
    DEFAULT_TIMEOUT_S,
    SMOKE_CLIENTS,
    SMOKE_CONNECTIONS,
    SMOKE_REPEATS,
    SMOKE_REQUESTS,
    format_clients,
    gate_failures,
    points_as_dicts,
    run_clients,
    summarize,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sweep within a CI runner's fd limit",
    )
    parser.add_argument(
        "--clients",
        type=int,
        nargs="+",
        default=None,
        help="client counts to sweep",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="total requests per point (split across clients)",
    )
    parser.add_argument(
        "--connections",
        type=int,
        default=None,
        help="TCP connection budget identities multiplex over",
    )
    parser.add_argument(
        "--dispatch-workers",
        type=int,
        default=DEFAULT_DISPATCH_WORKERS,
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="measured rounds per point (best goodput wins)",
    )
    parser.add_argument(
        "--timeout", type=float, default=DEFAULT_TIMEOUT_S
    )
    parser.add_argument(
        "--gate",
        type=float,
        nargs="?",
        const=DEFAULT_MIN_RATIO,
        default=None,
        metavar="RATIO",
        help="fail unless every point's goodput reaches RATIO x the "
        f"smallest point's (default {DEFAULT_MIN_RATIO}) with zero "
        "errors",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="JSON",
        help="gate a committed results file instead of running the "
        "bench (used by CI against BENCH_clients.json)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write results JSON here",
    )
    args = parser.parse_args(argv)

    if args.check is not None:
        from repro.bench.clients import ClientPoint

        payload = json.loads(args.check.read_text())
        points = [ClientPoint(**d) for d in payload["results"]]
        ratio = args.gate if args.gate is not None else DEFAULT_MIN_RATIO
        print(format_clients(points))
        failures = gate_failures(points, min_ratio=ratio)
        print(
            f"\ncommitted-curve gate ({args.check}): zero errors, "
            f"every point >= {ratio:.2f}x the smallest point"
        )
        for line in failures or ["  committed curve ok"]:
            print(f"  {line}" if line != "  committed curve ok" else line)
        if failures:
            print(f"{len(failures)} check(s) failed the gate")
            return 1
        return 0

    clients = args.clients or (
        SMOKE_CLIENTS if args.smoke else DEFAULT_CLIENTS
    )
    requests = args.requests or (
        SMOKE_REQUESTS if args.smoke else DEFAULT_REQUESTS
    )
    connections = args.connections or (
        SMOKE_CONNECTIONS if args.smoke else DEFAULT_CONNECTIONS
    )
    repeats = args.repeats or (
        SMOKE_REPEATS if args.smoke else DEFAULT_REPEATS
    )

    points = run_clients(
        clients=clients,
        total_requests=requests,
        connections=connections,
        dispatch_workers=args.dispatch_workers,
        repeats=repeats,
        timeout_s=args.timeout,
        verbose=True,
    )
    print(format_clients(points))

    failures = []
    if args.gate is not None:
        failures = gate_failures(points, min_ratio=args.gate)
        print(
            f"\nclients gate: zero errors, every point >= "
            f"{args.gate:.2f}x the smallest point's goodput"
        )
        for line in failures or ["  all points ok"]:
            print(f"  {line}" if line != "  all points ok" else line)

    if args.out is not None:
        payload = {
            "benchmark": "clients",
            "units": {
                "goodput_rps": (
                    "completed requests per second of wall clock "
                    "(best of the measured rounds)"
                ),
            },
            "parameters": {
                "clients": clients,
                "total_requests": requests,
                "connections": connections,
                "dispatch_workers": args.dispatch_workers,
                "repeats": repeats,
                "timeout_s": args.timeout,
            },
            "summary": summarize(points),
            "results": points_as_dicts(points),
        }
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.out}")

    if failures:
        print(f"{len(failures)} point(s)/check(s) failed the gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
