#!/usr/bin/env python
"""Run the fault-injection benchmark and emit BENCH_faults.json.

Usage::

    PYTHONPATH=src python tools/bench_faults.py                # full sweep
    PYTHONPATH=src python tools/bench_faults.py --smoke        # CI subset
    PYTHONPATH=src python tools/bench_faults.py --smoke \\
        --gate-goodput                      # completion + goodput gate

Sweeps frame-loss rates (default 0% and 1%) over both transfer
methods on the selected fabrics, with a retrying client policy and a
reply-caching server behind a seeded
:class:`~repro.ft.faults.FaultyFabric`.  ``--gate-goodput`` fails
(exit 1) when any point leaves an invocation uncompleted or its
goodput is not positive — the coarse, machine-independent guarantee
that the fault-tolerance layer converts loss into latency rather
than hangs.  Absolute MB/s numbers are machine-dependent and never
gated on.

See ``docs/robustness.md`` for the methodology.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.faults import (  # noqa: E402
    DEFAULT_LOSS_RATES,
    DEFAULT_REQUESTS,
    DEFAULT_SIZE,
    DEFAULT_TIMEOUT_S,
    SMOKE_LOSS_RATES,
    SMOKE_REQUESTS,
    SMOKE_SIZE,
    format_faults,
    gate_failures,
    points_as_dicts,
    run_faults,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fabric",
        choices=["inproc", "socket", "both"],
        default="both",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small payload, fewer requests (CI-friendly)",
    )
    parser.add_argument("--size", type=int, default=None, help="bytes")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument(
        "--loss",
        type=lambda s: [float(r) for r in s.split(",")],
        default=None,
        help="comma-separated frame-loss probabilities",
    )
    parser.add_argument(
        "--delay",
        type=float,
        default=0.0,
        help="frame-delay probability added at every point",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--timeout",
        type=float,
        default=DEFAULT_TIMEOUT_S,
        help="per-attempt timeout in seconds (bounds the cost of "
        "each lost frame)",
    )
    parser.add_argument(
        "--gate-goodput",
        action="store_true",
        help="fail when any point leaves requests uncompleted or "
        "goodput is not positive",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write results JSON here",
    )
    args = parser.parse_args(argv)

    fabrics = (
        ["inproc", "socket"] if args.fabric == "both" else [args.fabric]
    )
    loss = args.loss or (
        SMOKE_LOSS_RATES if args.smoke else DEFAULT_LOSS_RATES
    )
    size = args.size or (SMOKE_SIZE if args.smoke else DEFAULT_SIZE)
    requests = args.requests or (
        SMOKE_REQUESTS if args.smoke else DEFAULT_REQUESTS
    )

    points = []
    for fabric in fabrics:
        points.extend(
            run_faults(
                fabric,
                loss,
                delay_rate=args.delay,
                seed=args.seed,
                size_bytes=size,
                requests=requests,
                timeout_s=args.timeout,
            )
        )
    print(format_faults(points))

    failures = []
    if args.gate_goodput:
        failures = gate_failures(points)
        print(
            "\nfaults gate: every invocation completes, goodput > 0"
        )
        for line in failures or ["  all points ok"]:
            print(f"  {line}" if line != "  all points ok" else line)

    if args.out is not None:
        payload = {
            "benchmark": "faults",
            "units": {
                "goodput_mb_per_s": (
                    "completed payload MB per second of wall clock, "
                    "both directions"
                ),
            },
            "parameters": {
                "size_bytes": size,
                "requests": requests,
                "loss_rates": loss,
                "delay_rate": args.delay,
                "seed": args.seed,
                "timeout_s": args.timeout,
            },
            "results": points_as_dicts(points),
        }
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.out}")

    if failures:
        print(f"{len(failures)} point(s) failed the gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
