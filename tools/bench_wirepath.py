#!/usr/bin/env python
"""Run the wire-path roundtrip benchmark and emit BENCH_wirepath.json.

Usage::

    PYTHONPATH=src python tools/bench_wirepath.py                # full sweep
    PYTHONPATH=src python tools/bench_wirepath.py --smoke        # CI subset
    PYTHONPATH=src python tools/bench_wirepath.py --smoke \\
        --check BENCH_wirepath.json                              # regression gate

The JSON carries a ``results`` list (one record per fabric × size),
plus ``thresholds`` — the maximum acceptable ``copies_per_payload_byte``
per fabric.  ``--check FILE`` re-measures and fails (exit 1) if any
point regresses above the checked-in threshold; timing numbers are
machine-dependent and are never gated on.

See ``docs/performance.md`` for the methodology.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.wirepath import (  # noqa: E402
    DEFAULT_SIZES,
    SMOKE_SIZES,
    format_wirepath,
    points_as_dicts,
    run_wirepath,
)

#: Copy-budget ceilings (copies per payload byte) written into the
#: emitted JSON and enforced by ``--check``.  The zero-copy pipeline
#: measures ~2.0 at large sizes (one receive copy plus one landing
#: store per direction); small sizes are header-dominated, so the
#: ceiling is per-size-class.  Margins leave room for scheduler noise,
#: not for an extra payload-sized copy.
THRESHOLDS = {
    "small": 8.0,  # < 64 KiB: headers and protocol bytes dominate
    "large": 3.0,  # >= 64 KiB: payload dominates; ~2.0 measured
}
_SMALL_LIMIT = 64 * 1024


def threshold_for(size_bytes: int) -> float:
    return (
        THRESHOLDS["small"]
        if size_bytes < _SMALL_LIMIT
        else THRESHOLDS["large"]
    )


def measure(
    fabrics: list[str],
    sizes: list[int],
    iterations: int,
    rts: str = "thread",
) -> list:
    points = []
    for fabric in fabrics:
        points.extend(
            run_wirepath(
                fabric, sizes, iterations=iterations, rts_backend=rts
            )
        )
    return points


def check(points: list, reference: dict) -> int:
    """Fail if any measured point exceeds the recorded ceiling."""
    thresholds = reference.get("thresholds", THRESHOLDS)
    failures = 0
    for p in points:
        limit = (
            thresholds["small"]
            if p.size_bytes < _SMALL_LIMIT
            else thresholds["large"]
        )
        verdict = "ok" if p.copies_per_payload_byte <= limit else "FAIL"
        if verdict == "FAIL":
            failures += 1
        print(
            f"  {p.fabric:<8} {p.size_bytes:>10} B  "
            f"{p.copies_per_payload_byte:>6.2f} copies/byte  "
            f"(limit {limit:.2f})  {verdict}"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fabric",
        choices=["inproc", "socket", "both"],
        default="both",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes only (CI-friendly)",
    )
    parser.add_argument(
        "--rts",
        choices=["thread", "process"],
        default="thread",
        help="RTS backend for the client (process = forked client "
        "rank over TCP; implies --fabric socket)",
    )
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write results JSON here",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="compare against this reference JSON's thresholds; "
        "exit 1 on regression",
    )
    args = parser.parse_args(argv)

    fabrics = (
        ["inproc", "socket"] if args.fabric == "both" else [args.fabric]
    )
    if args.rts == "process":
        # The in-process fabric cannot span OS processes.
        fabrics = ["socket"]
    sizes = SMOKE_SIZES if args.smoke else DEFAULT_SIZES
    points = measure(fabrics, sizes, args.iterations, rts=args.rts)
    print(format_wirepath(points))

    if args.check is not None:
        reference = json.loads(args.check.read_text())
        print(f"\ncopy-budget check against {args.check}:")
        failures = check(points, reference)
        if failures:
            print(f"{failures} point(s) over the copy budget")
            return 1
        print("all points within the copy budget")

    if args.out is not None:
        payload = {
            "benchmark": "wirepath",
            "rts": args.rts,
            "units": {
                "mb_per_s": "payload MB per second, both directions",
                "copies_per_payload_byte": (
                    "bytes physically copied / (2 * size * iterations)"
                ),
            },
            "thresholds": THRESHOLDS,
            "results": points_as_dicts(points),
        }
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
