#!/usr/bin/env python
"""Render an exported Chrome-trace file as a text timeline.

    PYTHONPATH=src python tools/trace_view.py trace.json
    PYTHONPATH=src python tools/trace_view.py trace.json --list
    PYTHONPATH=src python tools/trace_view.py trace.json --trace-id 0x1a2b... --width 80

Pairs with ``repro.trace``'s exporter: anything written by
``write_chrome_trace`` (see ``examples/traced_client.py`` or
``docs/observability.md``) loads here; the same file also loads in
``chrome://tracing`` / https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.trace import format_timeline, read_chrome_trace  # noqa: E402
from repro.trace.view import format_summary  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome-trace JSON file")
    parser.add_argument(
        "--trace-id",
        help="render only this trace id (hex, e.g. 0x1a2b; default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list trace ids and exit"
    )
    parser.add_argument(
        "--summary", action="store_true", help="per-stage aggregate only"
    )
    parser.add_argument("--width", type=int, default=64, help="bar width")
    parser.add_argument(
        "--no-attrs", action="store_true", help="omit span attributes"
    )
    args = parser.parse_args(argv)

    try:
        spans = read_chrome_trace(args.trace)
    except OSError as exc:
        print(f"cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1
    except (ValueError, KeyError, TypeError) as exc:
        print(f"not a Chrome-trace file: {args.trace}: {exc}", file=sys.stderr)
        return 1
    if not spans:
        print("no spans in", args.trace)
        return 1

    trace_ids: dict[int, int] = {}
    for span in spans:
        trace_ids[span.trace_id] = trace_ids.get(span.trace_id, 0) + 1

    if args.list:
        for tid, count in trace_ids.items():
            print(f"0x{tid:016x}  {count} spans")
        return 0

    if args.summary:
        print(format_summary(spans))
        return 0

    if args.trace_id is not None:
        wanted = int(args.trace_id, 16)
        spans = [s for s in spans if s.trace_id == wanted]
        if not spans:
            print(f"no spans with trace id 0x{wanted:016x}")
            return 1
        groups = [wanted]
    else:
        groups = list(trace_ids)

    for i, tid in enumerate(groups):
        if i:
            print()
        print(
            format_timeline(
                [s for s in spans if s.trace_id == tid],
                width=args.width,
                attrs=not args.no_attrs,
            )
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
