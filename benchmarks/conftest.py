"""Benchmark-suite plumbing.

Each benchmark module registers its rendered table here; the terminal
summary prints them after pytest-benchmark's own timing table, so
``pytest benchmarks/ --benchmark-only`` reproduces the paper's tables
verbatim in its output.
"""

from __future__ import annotations

import pytest

_RENDERED: list[str] = []


def register_table(text: str) -> None:
    if text not in _RENDERED:
        _RENDERED.append(text)


@pytest.fixture(scope="session")
def paper_config():
    from repro.simnet import paper_testbed

    return paper_testbed()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RENDERED:
        return
    terminalreporter.section("PARDIS paper reproduction")
    for text in _RENDERED:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
