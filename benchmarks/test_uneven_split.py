"""§3.3's uneven-split datapoint: splitting the sequence unevenly over
the client's threads is of comparable efficiency (the paper measured
370 ms against ~even timings in the same experiment)."""

import pytest

from repro.bench import UNEVEN_SPLIT_PAPER_MS, format_table, uneven_split
from repro.dist import Proportions
from repro.simnet import simulate_multiport
from repro.simnet.calibration import PAPER_SEQUENCE_BYTES

from conftest import register_table

SPLITS = {
    "7:1:9:3": Proportions(7, 1, 9, 3),
    "1:1:1:5": Proportions(1, 1, 1, 5),
    "5:3:5:3": Proportions(5, 3, 5, 3),
}


@pytest.fixture(scope="module", autouse=True)
def render(paper_config):
    register_table(format_table(uneven_split(paper_config)))


@pytest.mark.parametrize("label", sorted(SPLITS))
def test_uneven_split_bench(benchmark, paper_config, label):
    result = benchmark(
        simulate_multiport,
        paper_config,
        4,
        8,
        PAPER_SEQUENCE_BYTES,
        client_template=SPLITS[label],
    )
    assert result.t_inv > 0


def test_uneven_comparable_to_even(paper_config):
    even = simulate_multiport(paper_config, 4, 8, PAPER_SEQUENCE_BYTES)
    for template in SPLITS.values():
        uneven = simulate_multiport(
            paper_config,
            4,
            8,
            PAPER_SEQUENCE_BYTES,
            client_template=template,
        )
        # "of comparable efficiency": within ~40% of even, and in the
        # same class as the paper's 370 ms observation.
        assert uneven.t_inv <= even.t_inv * 1.45
        assert uneven.t_inv <= UNEVEN_SPLIT_PAPER_MS * 1.10
