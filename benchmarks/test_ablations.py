"""Ablation benches for the design choices DESIGN.md calls out."""

import pytest

from repro.bench import (
    ablation_gather,
    ablation_header,
    ablation_scheduler,
    format_table,
)
from repro.simnet import simulate_centralized, simulate_multiport
from repro.simnet.calibration import PAPER_SEQUENCE_BYTES

from conftest import register_table


@pytest.fixture(scope="module", autouse=True)
def render(paper_config):
    register_table(format_table(ablation_scheduler(paper_config)))
    register_table(format_table(ablation_gather(paper_config)))
    register_table(format_table(ablation_header(paper_config)))


class TestSchedulerAblation:
    def test_ideal_scheduler_bench(self, benchmark, paper_config):
        ideal = paper_config.without_scheduler()
        result = benchmark(
            simulate_centralized, ideal, 4, 8, PAPER_SEQUENCE_BYTES
        )
        assert result.t_inv > 0

    def test_interference_explains_centralized_growth(self, paper_config):
        """With an ideal scheduler the centralized method barely grows
        with thread count — confirming the paper's attribution."""
        ideal = paper_config.without_scheduler()
        grow_real = (
            simulate_centralized(
                paper_config, 1, 8, PAPER_SEQUENCE_BYTES
            ).t_pack_send
            - simulate_centralized(
                paper_config, 1, 1, PAPER_SEQUENCE_BYTES
            ).t_pack_send
        )
        grow_ideal = (
            simulate_centralized(ideal, 1, 8, PAPER_SEQUENCE_BYTES).t_pack_send
            - simulate_centralized(ideal, 1, 1, PAPER_SEQUENCE_BYTES).t_pack_send
        )
        assert grow_ideal == pytest.approx(0.0, abs=1.0)
        assert grow_real > 20.0

    def test_multiport_still_wins_without_interference(self, paper_config):
        """Locality + parallel marshaling alone keep multi-port ahead."""
        ideal = paper_config.without_scheduler()
        ct = simulate_centralized(ideal, 4, 8, PAPER_SEQUENCE_BYTES)
        mp = simulate_multiport(ideal, 4, 8, PAPER_SEQUENCE_BYTES)
        assert mp.t_inv < ct.t_inv


class TestGatherAblation:
    def test_staging_is_minority_of_win(self, paper_config):
        """Gather/scatter elimination explains only part of the gap;
        the link-utilization effect carries the rest."""
        ct = simulate_centralized(paper_config, 4, 8, PAPER_SEQUENCE_BYTES)
        mp = simulate_multiport(paper_config, 4, 8, PAPER_SEQUENCE_BYTES)
        staging = ct.t_gather + ct.t_scatter
        win = ct.t_inv - mp.t_inv
        assert 0 < staging < win


class TestHeaderAblation:
    def test_header_overhead_vanishes_at_scale(self, paper_config):
        small = simulate_multiport(paper_config, 4, 8, 100 * 8)
        big = simulate_multiport(paper_config, 4, 8, 10**6 * 8)
        header = (
            paper_config.pair_stall(4, 8, multiport=True)
            + paper_config.link_latency
        )
        assert header / small.t_inv > 0.05
        assert header / big.t_inv < 0.05

    def test_header_bench(self, benchmark, paper_config):
        result = benchmark(
            simulate_multiport, paper_config, 4, 8, 100 * 8
        )
        assert result.t_inv > 0
