"""Wall-clock benchmarks of the *functional* plane: the real ORB stack
(threads, CDR, transport) executing the same invocations.

These do not reproduce the paper's absolute numbers — that is the
simulator's job — but they measure this library's own overheads and
preserve the paper's key *relative* property on real executions: the
multi-port method moves every byte exactly once per direction, while
the centralized method moves each byte through gather + network +
scatter.
"""

import numpy as np
import pytest

from repro import ORB, compile_idl

IDL = """
typedef dsequence<double> darray;
interface bench_object {
    void touch(inout darray data);
    double consume(in darray data);
    long ping(in long x);
};
"""


@pytest.fixture(scope="module")
def stack():
    idl = compile_idl(IDL, module_name="bench_idl")

    class Impl(idl.bench_object_skel):
        def touch(self, data):
            data.local_data()[:] += 1.0

        def consume(self, data):
            total = float(data.local_data().sum())
            if self.comm is not None:
                from repro.rts.mpi import SUM

                total = self.comm.allreduce(total, op=SUM)
            return total

        def ping(self, x):
            return x + 1

    orb = ORB(timeout=60.0)
    orb.serve("bench", lambda ctx: Impl(), 4)
    runtime = orb.client_runtime()
    proxy_multi = idl.bench_object._bind("bench", runtime)
    proxy_cent = idl.bench_object._bind(
        "bench", runtime, transfer="centralized"
    )
    yield idl, orb, proxy_multi, proxy_cent
    orb.shutdown()


class TestLatency:
    def test_null_invocation_latency(self, benchmark, stack):
        _idl, _orb, proxy, _ = stack
        result = benchmark(proxy.ping, 1)
        assert result == 2

    def test_future_dispatch_overhead(self, benchmark, stack):
        _idl, _orb, proxy, _ = stack

        def roundtrip():
            return proxy.ping_nb(1).value(timeout=30)

        assert benchmark(roundtrip) == 2


@pytest.mark.parametrize("nelems", [1_000, 100_000])
class TestThroughput:
    def test_centralized_in_argument(self, benchmark, stack, nelems):
        idl, _orb, _, proxy = stack
        seq = idl.darray.adopt(np.ones(nelems))
        total = benchmark(proxy.consume, seq)
        assert total == float(nelems)

    def test_multiport_in_argument(self, benchmark, stack, nelems):
        idl, _orb, proxy, _ = stack
        seq = idl.darray.adopt(np.ones(nelems))
        total = benchmark(proxy.consume, seq)
        assert total == float(nelems)

    def test_inout_roundtrip(self, benchmark, stack, nelems):
        idl, _orb, proxy, _ = stack
        seq = idl.darray.adopt(np.zeros(nelems))
        benchmark(proxy.touch, seq)
        assert seq.local_data()[0] > 0
