"""Concurrent-client contention bench — the throughput side of §3.3's
argument for separating the invocation header from data transfer,
plus the real fan-in sweep: simulated clients against the event-loop
server (``repro.bench.clients``), scaled 100 → 10k by
``tools/bench_clients.py`` and smoke-checked here."""

import pytest

from repro.bench import concurrent_clients, format_table
from repro.bench.clients import (
    gate_failures,
    run_clients,
    summarize,
)
from repro.simnet import simulate_concurrent
from repro.simnet.calibration import PAPER_SEQUENCE_BYTES

from conftest import register_table

BURSTS = [1, 2, 4, 8]


@pytest.fixture(scope="module", autouse=True)
def render(paper_config):
    register_table(format_table(concurrent_clients(paper_config)))


@pytest.mark.parametrize("nclients", BURSTS)
@pytest.mark.parametrize("method", ["centralized", "multiport"])
def test_concurrent_burst(benchmark, paper_config, method, nclients):
    result = benchmark(
        simulate_concurrent,
        paper_config,
        method,
        nclients,
        4,
        8,
        PAPER_SEQUENCE_BYTES,
    )
    assert result.makespan > 0


def test_multiport_sustains_higher_aggregate(paper_config):
    for k in BURSTS:
        ct = simulate_concurrent(
            paper_config, "centralized", k, 4, 8, PAPER_SEQUENCE_BYTES
        )
        mp = simulate_concurrent(
            paper_config, "multiport", k, 4, 8, PAPER_SEQUENCE_BYTES
        )
        assert mp.aggregate_bandwidth > ct.aggregate_bandwidth


def test_pipelining_improves_aggregate_bandwidth(paper_config):
    """Transfers of later requests overlap processing of earlier ones,
    so aggregate bandwidth rises with burst size for both methods."""
    for method in ("centralized", "multiport"):
        rates = [
            simulate_concurrent(
                paper_config, method, k, 4, 8, PAPER_SEQUENCE_BYTES
            ).aggregate_bandwidth
            for k in BURSTS
        ]
        assert rates == sorted(rates)


def test_multiport_approaches_link_saturation(paper_config):
    result = simulate_concurrent(
        paper_config, "multiport", 8, 4, 8, PAPER_SEQUENCE_BYTES
    )
    assert result.link_utilization > 0.85
    assert (
        result.aggregate_bandwidth
        > 0.85 * paper_config.link_bandwidth
    )


def test_single_client_matches_solo_model(paper_config):
    """A burst of one must agree with the standalone invocation model
    (same phases, same costs)."""
    from repro.simnet import simulate_centralized, simulate_multiport

    burst = simulate_concurrent(
        paper_config, "centralized", 1, 4, 8, PAPER_SEQUENCE_BYTES
    )
    solo = simulate_centralized(paper_config, 4, 8, PAPER_SEQUENCE_BYTES)
    assert burst.makespan == pytest.approx(solo.t_inv, rel=0.02)
    burst_mp = simulate_concurrent(
        paper_config, "multiport", 1, 4, 8, PAPER_SEQUENCE_BYTES
    )
    solo_mp = simulate_multiport(paper_config, 4, 8, PAPER_SEQUENCE_BYTES)
    assert burst_mp.makespan == pytest.approx(solo_mp.t_inv, rel=0.05)


# ---------------------------------------------------------------------------
# Real fan-in: simulated identities against the event-loop server
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fanin_points():
    """A scaled-down sweep (the full 100 → 10k curve is
    ``tools/bench_clients.py``; its committed result is gated in the
    CI ``clients`` job)."""
    return run_clients(
        clients=[20, 100],
        total_requests=600,
        connections=32,
        repeats=2,
    )


def test_fanin_sweep_completes_without_errors(fanin_points):
    assert [p.clients for p in fanin_points] == [20, 100]
    for point in fanin_points:
        assert point.errors == 0
        assert point.goodput_rps > 0
        # Every admitted request left the dispatch layer: the
        # governor's books balance when the point ends.
        assert (
            point.server_requests["inflight"] == 0
        ), point.server_requests


def test_fanin_goodput_stays_flat(fanin_points):
    # Generous in-suite ratio: this tiny sweep exists to catch "5x
    # collapse under fan-in" regressions quickly, not to measure; the
    # committed full curve carries the 0.8x acceptance gate.
    assert gate_failures(fanin_points, min_ratio=0.5) == []
    assert summarize(fanin_points)["total_errors"] == 0


def test_fanin_connection_budget_multiplexes_identities(fanin_points):
    # 100 identities over a 32-connection budget: the event loop
    # demuxes by request-id identity, not by socket.
    peak = fanin_points[-1]
    assert peak.clients == 100
    assert peak.connections == 32
    assert peak.server_requests["completed"] >= peak.requests
