"""Wire-path roundtrip benchmark — the *real* pipeline, not simnet.

Runs the echo microbenchmark over both fabrics at the CI smoke sizes,
prints the bandwidth/copy table, and gates the zero-copy invariant:
bytes copied per payload byte must stay within the checked-in budget
(see ``tools/bench_wirepath.py`` and ``docs/performance.md``).
"""

import pytest

from repro.bench.wirepath import (
    SMOKE_SIZES,
    format_wirepath,
    run_wirepath,
)

from conftest import register_table

_SMALL_LIMIT = 64 * 1024
#: Mirrors tools/bench_wirepath.py THRESHOLDS.
_BUDGET = {"small": 8.0, "large": 3.0}


@pytest.fixture(scope="module")
def wirepath_points():
    points = run_wirepath("inproc", SMOKE_SIZES, iterations=3)
    points += run_wirepath("socket", SMOKE_SIZES, iterations=3)
    register_table(format_wirepath(points))
    return points


def test_every_point_measures_bandwidth(wirepath_points):
    assert len(wirepath_points) == 2 * len(SMOKE_SIZES)
    for point in wirepath_points:
        assert point.mb_per_s > 0
        assert point.seconds > 0


def test_copy_budget_holds(wirepath_points):
    """The zero-copy figure of merit: copies per payload byte."""
    for point in wirepath_points:
        limit = (
            _BUDGET["small"]
            if point.size_bytes < _SMALL_LIMIT
            else _BUDGET["large"]
        )
        assert point.copies_per_payload_byte <= limit, (
            f"{point.fabric} @ {point.size_bytes}B copies "
            f"{point.copies_per_payload_byte:.2f} bytes/payload byte, "
            f"budget is {limit}"
        )


def test_large_payloads_approach_two_copies(wirepath_points):
    """At payload-dominated sizes the pipeline should do ~1 copy per
    direction (receive landing + destination store), i.e. ~2 total."""
    large = [
        p for p in wirepath_points if p.size_bytes >= _SMALL_LIMIT
    ]
    assert large, "smoke sweep must include a payload-dominated size"
    for point in large:
        assert point.copies_per_payload_byte < 3.0
