"""Table 2 — multi-port argument transfer (paper §3.3)."""

import pytest

from repro.bench import TABLE2_PAPER, format_table, table2
from repro.bench.paper_data import TABLE2_BARRIER_PAPER
from repro.simnet import simulate_multiport
from repro.simnet.calibration import PAPER_SEQUENCE_BYTES

from conftest import register_table

CONFIGS = sorted(TABLE2_PAPER)


@pytest.fixture(scope="module", autouse=True)
def render(paper_config):
    register_table(format_table(table2(paper_config)))


@pytest.mark.parametrize("nclient,nserver", CONFIGS)
def test_table2_cell(benchmark, paper_config, nclient, nserver):
    result = benchmark(
        simulate_multiport,
        paper_config,
        nclient,
        nserver,
        PAPER_SEQUENCE_BYTES,
    )
    paper_ms = TABLE2_PAPER[(nclient, nserver)]
    # Looser tolerance: several Table 2 cells are OCR reconstructions.
    assert result.t_inv == pytest.approx(paper_ms, rel=0.15)


@pytest.mark.parametrize("nclient,nserver", CONFIGS)
def test_table2_barrier_shape(paper_config, nclient, nserver):
    """Barrier wait: near zero when client threads cover the server's,
    large when sends sequentialize (paper's 0.03 / 165-307 pattern)."""
    result = simulate_multiport(
        paper_config, nclient, nserver, PAPER_SEQUENCE_BYTES
    )
    paper_ms = TABLE2_BARRIER_PAPER[(nclient, nserver)]
    if paper_ms < 10:
        assert result.t_barrier < 15.0
    else:
        assert result.t_barrier == pytest.approx(paper_ms, rel=0.25)


def test_table2_invocation_decreases_with_client_threads(paper_config):
    for nserver in (1, 2, 4, 8):
        times = [
            simulate_multiport(
                paper_config, c, nserver, PAPER_SEQUENCE_BYTES
            ).t_inv
            for c in (1, 2, 4)
        ]
        assert times == sorted(times, reverse=True)


def test_table2_never_underperforms_centralized(paper_config):
    """'We have not found a case in which it would underperform the
    centralized method.'"""
    from repro.simnet import simulate_centralized

    for nclient, nserver in CONFIGS:
        mp = simulate_multiport(
            paper_config, nclient, nserver, PAPER_SEQUENCE_BYTES
        )
        ct = simulate_centralized(
            paper_config, nclient, nserver, PAPER_SEQUENCE_BYTES
        )
        assert mp.t_inv <= ct.t_inv * 1.02
