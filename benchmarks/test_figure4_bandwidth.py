"""Figure 4 — effective bandwidth vs sequence length, both methods,
at the most powerful configuration (client=4, server=8)."""

import pytest

from repro.bench import FIGURE4_PAPER, figure4, format_figure4
from repro.simnet import simulate_centralized, simulate_multiport

from conftest import register_table

LENGTHS = [10**e for e in range(1, 8)]


@pytest.fixture(scope="module", autouse=True)
def render(paper_config):
    register_table(format_figure4(figure4(paper_config)))


@pytest.mark.parametrize("length", LENGTHS)
def test_figure4_centralized_point(benchmark, paper_config, length):
    result = benchmark(
        simulate_centralized, paper_config, 4, 8, length * 8
    )
    assert result.effective_bandwidth > 0


@pytest.mark.parametrize("length", LENGTHS)
def test_figure4_multiport_point(benchmark, paper_config, length):
    result = benchmark(
        simulate_multiport, paper_config, 4, 8, length * 8
    )
    assert result.effective_bandwidth > 0


def test_figure4_centralized_peak(paper_config):
    peak = max(
        simulate_centralized(
            paper_config, 4, 8, n * 8
        ).effective_bandwidth
        for n in LENGTHS
    )
    assert peak == pytest.approx(
        FIGURE4_PAPER["centralized_peak_mbps"], rel=0.15
    )


def test_figure4_multiport_peak(paper_config):
    peak = max(
        simulate_multiport(
            paper_config, 4, 8, n * 8
        ).effective_bandwidth
        for n in LENGTHS
    )
    assert peak == pytest.approx(
        FIGURE4_PAPER["multiport_peak_mbps"], rel=0.20
    )


def test_figure4_methods_converge_at_small_sizes(paper_config):
    """'For small data sizes the performance of both methods is nearly
    the same.'"""
    for length in (10, 100, 1000):
        ct = simulate_centralized(paper_config, 4, 8, length * 8)
        mp = simulate_multiport(paper_config, 4, 8, length * 8)
        ratio = mp.t_inv / ct.t_inv
        assert 0.5 < ratio < 1.5


def test_figure4_multiport_dominates_at_large_sizes(paper_config):
    """'For large data sizes the multi-port method significantly
    outperforms the centralized method.'"""
    for length in (10**6, 10**7):
        ct = simulate_centralized(paper_config, 4, 8, length * 8)
        mp = simulate_multiport(paper_config, 4, 8, length * 8)
        assert mp.effective_bandwidth > 1.8 * ct.effective_bandwidth
