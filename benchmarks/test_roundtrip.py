"""Inout round-trip bench: the argument travels both directions — the
paper's diffusion example's real traffic pattern, extending the
one-way evaluation."""

import pytest

from repro.bench import format_table, roundtrip
from repro.simnet import simulate_centralized, simulate_multiport
from repro.simnet.calibration import PAPER_SEQUENCE_BYTES

from conftest import register_table

CONFIGS = [(1, 1), (1, 8), (4, 4), (4, 8)]


@pytest.fixture(scope="module", autouse=True)
def render(paper_config):
    register_table(format_table(roundtrip(paper_config)))


@pytest.mark.parametrize("nclient,nserver", CONFIGS)
@pytest.mark.parametrize("method", ["centralized", "multiport"])
def test_roundtrip_bench(benchmark, paper_config, method, nclient, nserver):
    simulate = (
        simulate_centralized if method == "centralized"
        else simulate_multiport
    )
    result = benchmark(
        simulate,
        paper_config,
        nclient,
        nserver,
        PAPER_SEQUENCE_BYTES,
        reply_bytes=PAPER_SEQUENCE_BYTES,
    )
    assert result.t_inv > 0


def test_roundtrip_costs_more_than_one_way(paper_config):
    for nclient, nserver in CONFIGS:
        for simulate in (simulate_centralized, simulate_multiport):
            one_way = simulate(
                paper_config, nclient, nserver, PAPER_SEQUENCE_BYTES
            )
            both = simulate(
                paper_config,
                nclient,
                nserver,
                PAPER_SEQUENCE_BYTES,
                reply_bytes=PAPER_SEQUENCE_BYTES,
            )
            assert both.t_inv > one_way.t_inv * 1.3

    # A degenerate zero-length argument with reply data still works.
    tiny = simulate_multiport(paper_config, 2, 2, 0, reply_bytes=0)
    assert tiny.t_inv > 0


def test_multiport_advantage_compounds_on_roundtrips(paper_config):
    one_way_ratio = (
        simulate_centralized(paper_config, 4, 8, PAPER_SEQUENCE_BYTES).t_inv
        / simulate_multiport(paper_config, 4, 8, PAPER_SEQUENCE_BYTES).t_inv
    )
    both_ratio = (
        simulate_centralized(
            paper_config, 4, 8, PAPER_SEQUENCE_BYTES,
            reply_bytes=PAPER_SEQUENCE_BYTES,
        ).t_inv
        / simulate_multiport(
            paper_config, 4, 8, PAPER_SEQUENCE_BYTES,
            reply_bytes=PAPER_SEQUENCE_BYTES,
        ).t_inv
    )
    assert both_ratio >= one_way_ratio


def test_symmetric_single_thread_parity(paper_config):
    """With one thread on each side the methods degenerate to the same
    path: one pair, no staging, no parallel marshaling."""
    ct = simulate_centralized(
        paper_config, 1, 1, PAPER_SEQUENCE_BYTES,
        reply_bytes=PAPER_SEQUENCE_BYTES,
    )
    mp = simulate_multiport(
        paper_config, 1, 1, PAPER_SEQUENCE_BYTES,
        reply_bytes=PAPER_SEQUENCE_BYTES,
    )
    assert mp.t_inv == pytest.approx(ct.t_inv, rel=0.05)
