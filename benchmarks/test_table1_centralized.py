"""Table 1 — centralized argument transfer (paper §3.2).

Regenerates every cell of Table 1 (invocation time plus component
breakdown for one ``in`` dsequence of 2^20 doubles) and times the
simulation itself with pytest-benchmark.
"""

import pytest

from repro.bench import TABLE1_PAPER, format_table, table1
from repro.simnet import simulate_centralized
from repro.simnet.calibration import PAPER_SEQUENCE_BYTES

from conftest import register_table

CONFIGS = sorted(TABLE1_PAPER)


@pytest.fixture(scope="module", autouse=True)
def render(paper_config):
    register_table(format_table(table1(paper_config)))


@pytest.mark.parametrize("nclient,nserver", CONFIGS)
def test_table1_cell(benchmark, paper_config, nclient, nserver):
    result = benchmark(
        simulate_centralized,
        paper_config,
        nclient,
        nserver,
        PAPER_SEQUENCE_BYTES,
    )
    paper_ms = TABLE1_PAPER[(nclient, nserver)]
    # Shape guarantee: within 10% of the published cell.
    assert result.t_inv == pytest.approx(paper_ms, rel=0.10)


def test_table1_monotone_in_server_threads(paper_config):
    for nclient in (1, 4):
        times = [
            simulate_centralized(
                paper_config, nclient, s, PAPER_SEQUENCE_BYTES
            ).t_inv
            for s in (1, 2, 4, 8)
        ]
        assert times == sorted(times)


def test_table1_monotone_in_client_threads(paper_config):
    for nserver in (1, 8):
        a = simulate_centralized(
            paper_config, 1, nserver, PAPER_SEQUENCE_BYTES
        ).t_inv
        b = simulate_centralized(
            paper_config, 4, nserver, PAPER_SEQUENCE_BYTES
        ).t_inv
        assert b > a
