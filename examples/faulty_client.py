"""Fault tolerance under injected frame loss (repro.ft).

A client invokes an echo servant through a :class:`FaultyFabric` that
drops frames from a seeded, deterministic schedule.  Two policies face
the same loss:

- a retrying :class:`FtPolicy` — every invocation completes, the
  server's reply cache answering retried requests whose reply was the
  lost frame (so the servant never re-executes);
- retries disabled — the first lost frame surfaces as an error
  instead of hanging the client: :class:`DeadlineExceeded` when the
  loss shows up as a client-side timeout (lost reply),
  :class:`InvocationRetriesExhausted` when the server saw the loss
  first and answered with a COMM_FAILURE (lost data chunk).

``orb.stats()`` shows the whole story afterwards: frames the schedule
dropped, retries the policy spent, replays the server's cache served.

Run:  python examples/faulty_client.py
"""

import numpy as np

from repro import (
    ORB,
    DeadlineExceeded,
    FaultSchedule,
    FaultyFabric,
    FtPolicy,
    InvocationRetriesExhausted,
    compile_idl,
)
from repro.orb.transport import Fabric

IDL = """
typedef dsequence<double, 65536> payload;

interface echo {
    payload roundtrip(in payload data);
};
"""

idl = compile_idl(IDL, module_name="faulty_idl")

#: One frame in twenty lost, deterministically (same seed, same run).
LOSS = FaultSchedule(seed=11, drop=0.05)

REQUESTS = 40
N = 4096


class EchoServant(idl.echo_skel):
    def __init__(self):
        self.executions = 0

    def roundtrip(self, data):
        self.executions += 1
        return data


def retrying_run(orb):
    """Every invocation survives the loss; returns the retry count."""
    policy = FtPolicy(
        max_retries=8, backoff_base_ms=5.0, backoff_cap_ms=50.0
    )
    runtime = orb.client_runtime(label="retrying", ft_policy=policy)
    try:
        proxy = idl.echo._bind("echo", runtime)
        data = idl.payload.from_global(np.arange(N, dtype=np.float64))
        for i in range(REQUESTS):
            result = proxy.roundtrip(data)
            assert result.length() == N, f"request {i} came back short"
        return runtime.ft_stats.snapshot()["retries"]
    finally:
        runtime.close()


def fragile_run(orb):
    """Retries off: the same loss becomes a prompt error.  Which
    error depends on where the frame was lost — a lost reply times
    the client out (DeadlineExceeded), a lost data chunk makes the
    server answer COMM_FAILURE (InvocationRetriesExhausted, zero
    retries allowed)."""
    policy = FtPolicy(deadline_ms=250.0, max_retries=0)
    runtime = orb.client_runtime(label="fragile", ft_policy=policy)
    try:
        proxy = idl.echo._bind("echo", runtime)
        data = idl.payload.from_global(np.arange(N, dtype=np.float64))
        for i in range(REQUESTS):
            try:
                proxy.roundtrip(data)
            except (DeadlineExceeded, InvocationRetriesExhausted) as exc:
                return i, exc
        raise AssertionError("the seeded schedule dropped nothing")
    finally:
        runtime.close()


def main():
    faulty = FaultyFabric(Fabric("faulty-demo"), LOSS)
    with ORB("faulty-demo", fabric=faulty, timeout=0.25) as orb:
        orb.serve(
            "echo",
            lambda ctx: EchoServant(),
            nthreads=1,
            dispatch_policy="concurrent",
            reply_cache_bytes=4 << 20,
        )
        retries = retrying_run(orb)
        print(f"retrying client: {REQUESTS}/{REQUESTS} completed "
              f"({retries} retries)")
        index, exc = fragile_run(orb)
        print(f"fragile client: invocation #{index} raised "
              f"{type(exc).__name__}")
        stats = orb.stats()
        print(f"injected drops: {stats['fabric']['faults']['drop']}, "
              f"cache replays: "
              f"{stats['reply_caches']['echo']['replays']}")
    print("OK")


if __name__ == "__main__":
    main()
