"""Massive client fan-in: one event loop, hundreds of identities.

The server-side socket fabric no longer spends a thread per
connection: a single ``selectors`` event loop owns every client
socket, demultiplexes request frames by the 64-bit client identity in
their request ids, and feeds the dispatch pool through per-client
fair queues.  This example points 300 simulated clients — far more
than you would ever give threads to — at one serial servant and shows
the admission/backpressure counters that ``orb.stats()["server"]``
exposes, including a deliberately under-provisioned run where
admission control answers the overflow with retryable BUSY replies
instead of queueing without bound.

Run:  python examples/many_clients.py

See docs/scaling.md for the architecture and the tuning knobs used
here.
"""

import threading

from repro import ORB, FtPolicy, compile_idl
from repro.bench.clients import run_clients
from repro.orb.naming import NamingService
from repro.orb.server import ServerConfig
from repro.orb.socketnet import SocketFabric

IDL = """
interface counter {
    long add(in long x);
};
"""

idl = compile_idl(IDL, module_name="many_clients_idl")

CLIENTS = 300
CONNECTIONS = 64  # identities multiplex over a socket budget


def fan_in_sweep():
    """300 window-1 clients over 64 sockets against one servant."""
    [point] = run_clients(
        clients=[CLIENTS],
        total_requests=1500,
        connections=CONNECTIONS,
        repeats=1,
    )
    print(
        f"{point.clients} clients over {point.connections} "
        f"connections: {point.goodput_rps:,.0f} req/s, "
        f"{point.errors} errors"
    )
    assert point.errors == 0
    return point


def admission_control():
    """An under-provisioned server rejects the overflow fast."""
    gate = threading.Event()

    class Counter(idl.counter_skel):
        def add(self, x):
            gate.wait(timeout=10.0)  # a slow servant piles work up
            return int(x) + 1

    naming = NamingService()
    config = ServerConfig(max_inflight=4, client_queue_limit=0)
    with SocketFabric("fanin-server", server=config) as sf, \
            SocketFabric("fanin-client") as cf:
        server = ORB("fanin-server", fabric=sf, naming=naming,
                     timeout=5.0)
        client = ORB("fanin-client", fabric=cf, naming=naming,
                     timeout=5.0)
        with server, client:
            server.serve("counter", lambda ctx: Counter(),
                         nthreads=1, dispatch_workers=4)
            # Retryable BUSY replies + a backoff policy turn overload
            # into delay instead of failure.
            runtime = client.client_runtime(
                pipeline_depth=12,
                ft_policy=FtPolicy(max_retries=60,
                                   backoff_base_ms=10.0,
                                   backoff_cap_ms=100.0),
            )
            proxy = idl.counter._bind("counter", runtime)
            futures = [proxy.add_nb(i) for i in range(12)]
            gate.set()
            results = sorted(f.value(timeout=30) for f in futures)
            assert results == [i + 1 for i in range(12)]
            stats = server.stats()["server"]["requests"]
            print(
                f"max_inflight={stats['max_inflight']}: "
                f"{stats['admitted']} admitted, "
                f"{stats['rejected']} rejected busy (and retried), "
                f"all 12 calls completed"
            )
            assert stats["rejected"] > 0
            runtime.close()


def main():
    fan_in_sweep()
    admission_control()
    print("OK")


if __name__ == "__main__":
    main()
