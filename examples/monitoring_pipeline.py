"""A heterogeneous scenario: simulation + analysis + monitor.

Paper §2.1: "Principles applied in this simple scenario can be used to
construct more complex interactions composed of multiple parallel
applications, as well as units visualizing or otherwise monitoring
their progress."

Three components on one ORB:

- ``simulation`` — an SPMD object (4 threads) advancing a particle
  ensemble.
- ``analysis``  — a second SPMD object (2 threads) computing ensemble
  statistics; the *client pipeline* moves the distributed state from
  one service to the other.
- the monitor  — a **serial** client (plain ``_bind``) polling the
  simulation's progress attribute with non-blocking calls while the
  pipeline runs: the paper's "unit monitoring their progress".

Run:  python examples/monitoring_pipeline.py
"""

import threading
import time

import numpy as np

from repro import ORB, compile_idl

IDL = """
typedef dsequence<double, 16384> ensemble;

interface simulation {
    void step(in long nsteps, inout ensemble positions);
    readonly attribute long steps_done;
};

interface analysis {
    double spread(in ensemble positions);
    double drift(in ensemble positions);
};
"""

idl = compile_idl(IDL, module_name="pipeline_idl")


class SimulationServant(idl.simulation_skel):
    def __init__(self):
        self._steps = 0

    def step(self, nsteps, positions):
        local = positions.local_data()
        rng = np.random.default_rng(42 + self.rank)
        for _ in range(nsteps):
            local += 0.01 + 0.05 * rng.standard_normal(len(local))
        self._steps += nsteps

    def _get_steps_done(self):
        return self._steps


class AnalysisServant(idl.analysis_skel):
    def _moments(self, positions):
        from repro.rts.mpi import SUM

        local = positions.local_data()
        n = positions.length()
        if self.comm is None:
            return n, float(local.sum()), float((local**2).sum())
        sums = self.comm.allreduce(
            np.array([local.sum(), (local**2).sum()]), op=SUM
        )
        return n, float(sums[0]), float(sums[1])

    def spread(self, positions):
        n, s1, s2 = self._moments(positions)
        mean = s1 / n
        return float(np.sqrt(max(0.0, s2 / n - mean * mean)))

    def drift(self, positions):
        n, s1, _ = self._moments(positions)
        return s1 / n


def monitor(orb, stop):
    """Serial monitoring client: watches progress via the attribute."""
    runtime = orb.client_runtime(label="monitor")
    sim = idl.simulation._bind("simulation", runtime)
    seen = []
    while not stop.is_set():
        seen.append(sim.steps_done)
        time.sleep(0.02)
    runtime.close()
    return seen


def main():
    orb = ORB()
    orb.serve("simulation", lambda ctx: SimulationServant(), nthreads=4)
    orb.serve("analysis", lambda ctx: AnalysisServant(), nthreads=2)

    stop = threading.Event()
    observed = []
    watcher = threading.Thread(
        target=lambda: observed.extend(monitor(orb, stop))
    )
    watcher.start()

    def pipeline(c):
        sim = idl.simulation._spmd_bind("simulation", c.runtime)
        ana = idl.analysis._spmd_bind("analysis", c.runtime)
        positions = idl.ensemble.from_global(
            np.zeros(10_000), comm=c.comm
        )
        report = []
        for round_no in range(5):
            sim.step(20, positions)
            # Fire both analyses concurrently as futures and collect.
            spread_f = ana.spread_nb(positions)
            drift_f = ana.drift_nb(positions)
            report.append(
                (
                    round_no,
                    sim.steps_done,
                    drift_f.value(timeout=30),
                    spread_f.value(timeout=30),
                )
            )
        return report

    results = orb.run_spmd_client(2, pipeline)
    stop.set()
    watcher.join(10)
    orb.shutdown()

    print("round  steps  drift     spread")
    for round_no, steps, drift, spread in results[0]:
        print(f"{round_no:5d}  {steps:5d}  {drift:8.4f}  {spread:8.4f}")
    print(f"monitor sampled progress {len(observed)} times: {observed[:8]} ...")
    drifts = [r[2] for r in results[0]]
    assert drifts == sorted(drifts), "drift accumulates monotonically"
    assert observed and observed[-1] >= observed[0]
    print("pipeline + monitor OK")


if __name__ == "__main__":
    main()
