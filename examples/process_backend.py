"""The process RTS backend: SPMD ranks as OS processes.

PARDIS's computing threads normally share one interpreter — cheap, but
serialized on the GIL whenever a rank runs Python compute.  The
process backend (``backend="process"`` or ``PARDIS_RTS=process``)
gives every rank its own process; large payloads move through pooled
POSIX shared memory, so a gather still lands zero-copy at the root.

Two demonstrations:

1. an SPMD group whose ranks are distinct OS processes, gathering a
   1 MiB distributed array through the shared-memory data plane;
2. an ORB client running as a forked process rank, invoking a server
   in the parent process over the TCP fabric.

Run:  python examples/process_backend.py
"""

import os
import sys

import numpy as np

from repro import ORB, compile_idl
from repro.dist import BlockTemplate, Layout, transfer_schedule
from repro.rts import process_backend_supported, rts_for, spawn_spmd
from repro.rts.shm import ShmArray

IDL = """
typedef dsequence<double, 131072> chunk;

interface summer {
    double total(in chunk data);
};
"""

idl = compile_idl(IDL, module_name="process_backend_idl")

N = 1 << 17  # 1 MiB of float64


def spmd_body(ctx):
    """Each rank: own pid, own GIL; gather lands in shared memory."""
    layout = BlockTemplate(ctx.size).layout(N)
    steps = transfer_schedule(layout, Layout(((0, N),)))
    rts = rts_for(ctx.comm)  # -> ProcessRTS on a process-backend rank
    lo, hi = layout.local_range(ctx.rank)
    local = np.arange(lo, hi, dtype=np.float64)
    full = rts.gather_chunks(local, steps, root=0, out=None)
    if ctx.rank == 0:
        # The root's view is zero-copy: it aliases the pooled segment
        # the ranks wrote into, pinned by a lease until collected.
        assert isinstance(full, ShmArray)
        assert np.array_equal(full, np.arange(N, dtype=np.float64))
    rts.synchronize()
    return os.getpid()


class SummerServant(idl.summer_skel):
    def total(self, data):
        return float(np.sum(data.local_data()))


def main():
    if not process_backend_supported():
        print("process backend needs the fork start method; skipping")
        print("process backend OK")
        return

    # 1. SPMD on processes: same spawn call as the thread backend,
    #    but every rank reports a different pid.
    pids = spawn_spmd(spmd_body, 3, backend="process").join(60)
    assert len(set(pids)) == 3 and os.getpid() not in pids
    print(f"3 ranks on 3 processes: pids {sorted(pids)}")

    # 2. An ORB client as a process rank: server in this process,
    #    client forked, joined by the TCP fabric + naming server.
    from repro.orb.socketnet import (
        NamingServer,
        RemoteNamingClient,
        SocketFabric,
    )

    with NamingServer() as names, SocketFabric("server") as fabric:
        host, port = names.host, names.tcp_port
        orb = ORB(
            "server",
            fabric=fabric,
            naming=RemoteNamingClient(host, port),
        )
        with orb:
            orb.serve("summer", lambda ctx: SummerServant(), nthreads=1)

            def client_body(ctx):
                with SocketFabric("client") as client_fabric:
                    client_orb = ORB(
                        "client",
                        fabric=client_fabric,
                        naming=RemoteNamingClient(host, port),
                    )
                    with client_orb:
                        runtime = client_orb.client_runtime()
                        try:
                            proxy = idl.summer._bind("summer", runtime)
                            data = idl.chunk.from_global(
                                np.ones(N, dtype=np.float64)
                            )
                            return proxy.total(data)
                        finally:
                            runtime.close()

            (total,) = spawn_spmd(
                client_body, 1, backend="process", name="client"
            ).join(60)
    assert total == float(N), total
    print(f"cross-process invocation: summer.total = {total:.0f}")
    print("process backend OK")


if __name__ == "__main__":
    sys.exit(main())
