"""Pipelined invocations: several futures in flight at once (§2.1).

The paper's futures let "the client use remote resources concurrently
with its own" — but they pay off twice over when the client fires
*several* non-blocking invocations before touching any future: while
one request's reply is still in flight the next request is already
being decoded and executed by the server.

The pattern that unlocks the overlap:

    futures = [proxy.op_nb(arg) for arg in work]   # fire everything
    results = [f.value() for f in futures]         # then touch

versus the serial anti-pattern ``[proxy.op_nb(a).value() for a in
work]``, which waits out every round-trip before starting the next.

Run:  python examples/pipelined_client.py
"""

import time

from repro import ORB, compile_idl

IDL = """
interface worker {
    double crunch(in double x);
};
"""

idl = compile_idl(IDL, module_name="pipelined_idl")

#: Modeled per-request computation on the server (seconds).
SERVICE = 0.03
REQUESTS = 6


class CrunchServant(idl.worker_skel):
    def crunch(self, x):
        time.sleep(SERVICE)  # stands in for real computation
        return x * x


def run_burst(orb, depth):
    """Time REQUESTS invocations at the given pipeline depth."""
    runtime = orb.client_runtime(label=f"depth{depth}",
                                 pipeline_depth=depth)
    try:
        proxy = idl.worker._bind("worker", runtime)
        proxy.crunch(0.0)  # warm the connection
        start = time.perf_counter()
        # Fire the whole burst before touching any future...
        futures = [proxy.crunch_nb(float(i)) for i in range(REQUESTS)]
        # ...and only then collect the results.
        results = [f.value(timeout=30) for f in futures]
        elapsed = time.perf_counter() - start
    finally:
        runtime.close()
    assert results == [float(i * i) for i in range(REQUESTS)]
    return elapsed


def main():
    orb = ORB()
    # The servant is stateless, so the per-client ordering contract
    # can be dropped and even one client's requests overlap.
    orb.serve(
        "worker",
        lambda ctx: CrunchServant(),
        nthreads=1,
        dispatch_policy="concurrent",
    )

    serial = run_burst(orb, depth=1)  # depth 1 = one at a time
    pipelined = run_burst(orb, depth=REQUESTS)

    print(f"serial    (depth 1): {serial * 1e3:7.1f} ms "
          f"for {REQUESTS} requests")
    print(f"pipelined (depth {REQUESTS}): {pipelined * 1e3:7.1f} ms "
          f"for {REQUESTS} requests")
    print(f"speedup: {serial / pipelined:.1f}x")

    # Overlap pays roughly service_time * (REQUESTS - 1); allow slack
    # for scheduling noise on small machines.
    assert pipelined < serial, "pipelining should overlap service time"

    orb.shutdown()
    print("OK")


if __name__ == "__main__":
    main()
