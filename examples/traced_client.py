"""Collective-aware tracing of a pipelined SPMD invocation (repro.trace).

A 2-thread collective client makes pipelined invocations on a 2-thread
SPMD object over a fabric that drops frames from a seeded schedule.
With ``ORB(trace=True)`` every invocation becomes one logical trace:
rank-tagged spans on both sides — ``encode``, ``transfer``,
``dispatch``, ``reply``, plus ``retry`` spans where the fault
injection forced a re-send — all correlated by the trace id the client
stamps into the request header.

The script exports the recorder to Chrome-trace JSON (load it in
``chrome://tracing`` or https://ui.perfetto.dev), re-imports it to
prove the round-trip is lossless, and prints the text timeline of one
retried invocation (the same view ``tools/trace_view.py`` gives you
for a saved file).

Run:  python examples/traced_client.py
"""

import os
import tempfile

import numpy as np

from repro import ORB, FaultSchedule, FaultyFabric, FtPolicy, compile_idl
from repro.orb.transport import Fabric
from repro.trace import format_timeline, read_chrome_trace, write_chrome_trace

IDL = """
typedef dsequence<double, 65536> vec;

interface stats {
    double checksum(in vec data);
};
"""

idl = compile_idl(IDL, module_name="traced_idl")

NTHREADS = 2
REQUESTS = 8
N = 1024

#: Deterministic frame loss, enough to force visible retries.
LOSS = FaultSchedule(seed=23, drop=0.08)


class StatsServant(idl.stats_skel):
    def checksum(self, data):
        from repro.rts.mpi import SUM

        total = data.local_data().sum()
        if self.comm is not None:
            total = self.comm.allreduce(total, op=SUM)
        return float(total)


def collective_client(c):
    policy = FtPolicy(
        max_retries=8, backoff_base_ms=2.0, backoff_cap_ms=20.0
    )
    proxy = idl.stats._spmd_bind(
        "stats", c.runtime, transfer="multiport", ft_policy=policy
    )
    seq = idl.vec.from_global(
        np.ones(N, dtype=np.float64), comm=c.comm
    )
    # Pipelined: all invocations in flight before the first touch.
    futures = [proxy.checksum_nb(seq) for _ in range(REQUESTS)]
    return [f.value(timeout=120.0) for f in futures]


def main():
    faulty = FaultyFabric(Fabric("traced-demo"), LOSS)
    with ORB("traced-demo", fabric=faulty, timeout=0.3, trace=True) as orb:
        orb.serve(
            "stats",
            lambda ctx: StatsServant(),
            nthreads=NTHREADS,
            reply_cache_bytes=4 << 20,
        )
        results = orb.run_spmd_client(
            NTHREADS, collective_client, timeout=300.0
        )
        assert results[0] == results[1] == [float(N)] * REQUESTS
        assert faulty.fault_stats()["drop"] > 0, "schedule dropped nothing"

        trace = orb.trace
        trace_ids = trace.trace_ids()
        assert len(trace_ids) == REQUESTS, "one logical trace per invocation"
        retried = [
            t for t in trace_ids if trace.spans(trace_id=t, name="retry")
        ]
        assert retried, "the injected faults produced no retries"
        print(
            f"{REQUESTS} collective invocations -> {len(trace_ids)} traces"
            f" ({len(retried)} with retries), {len(trace)} spans"
        )

        # Every trace is fully correlated: client and server spans on
        # every rank under the one id stamped in the request header.
        for trace_id in trace_ids:
            lanes = {
                (s.side, s.rank) for s in trace.spans(trace_id=trace_id)
            }
            assert lanes >= {
                (side, rank)
                for side in ("client", "server")
                for rank in range(NTHREADS)
            }, f"trace 0x{trace_id:x} is missing lanes"

        # Export to Chrome-trace JSON and prove the round-trip.
        path = os.path.join(tempfile.mkdtemp(), "trace.json")
        write_chrome_trace(path, trace)
        reloaded = read_chrome_trace(path)
        assert len(reloaded) == len(trace.spans())
        print(f"exported {len(reloaded)} spans to {path}")

        counters = trace.metrics.snapshot()["counters"]
        print(
            f"metrics: ft.retries={counters['ft.retries']}"
            f" fabric.frames.request={counters['fabric.frames.request']}"
        )

        print()
        print(format_timeline(
            [s for s in reloaded if s.trace_id == retried[0]], width=48
        ))
    print("OK")


if __name__ == "__main__":
    main()
