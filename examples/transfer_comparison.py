"""Compare the two argument-transfer methods, live and simulated.

Live: runs the same invocation through the real ORB under both
methods with a protocol tracer attached, and prints the message
patterns of the paper's Figures 2 and 3.

Simulated: prints the paper's Table 1, Table 2 and Figure 4
equivalents from the calibrated testbed model (same output as
``python -m repro.bench``).

Run:  python examples/transfer_comparison.py
"""

import numpy as np

from repro import ORB, compile_idl
from repro.bench import figure4, format_figure4
from repro.orb.transfer import Tracer

IDL = """
typedef dsequence<double, 2048> darray;
interface worker {
    void process(inout darray data);
};
"""

idl = compile_idl(IDL, module_name="compare_idl")

NCLIENT, NSERVER, NELEMS = 3, 4, 1200


class Worker(idl.worker_skel):
    def process(self, data):
        data.local_data()[:] *= 2.0


def run_method(transfer):
    tracer = Tracer()
    orb = ORB(tracer=tracer)
    orb.serve("worker", lambda ctx: Worker(), NSERVER)

    def client(c):
        proxy = idl.worker._spmd_bind("worker", c.runtime, transfer=transfer)
        seq = idl.darray.from_global(np.ones(NELEMS), comm=c.comm)
        proxy.process(seq)
        return seq.allgather()

    results = orb.run_spmd_client(NCLIENT, client)
    orb.shutdown()
    assert np.all(results[0] == 2.0)
    return tracer


def describe(tracer, transfer):
    gathers = tracer.of_kind("rts-gather")
    scatters = tracer.of_kind("rts-scatter")
    chunks = tracer.of_kind("net-chunk")
    requests = tracer.of_kind("net-request")
    print(f"--- {transfer} (client={NCLIENT}, server={NSERVER}) ---")
    print(f"  network request messages : {len(requests)}")
    print(f"  RTS gather edges         : {len(gathers)}")
    print(f"  RTS scatter edges        : {len(scatters)}")
    print(f"  direct data chunks       : {len(chunks)}")
    if chunks:
        req = sorted(
            (c[3], c[4]) for c in chunks if c[1] == 0
        )
        print(f"  request-phase chunk edges: {req}")
    print()


def main():
    print("=" * 64)
    print("LIVE (functional plane): message patterns of Figures 2 and 3")
    print("=" * 64)
    for transfer in ("centralized", "multiport"):
        describe(run_method(transfer), transfer)

    print("=" * 64)
    print("SIMULATED (performance plane): Figure 4 on the 1997 testbed")
    print("=" * 64)
    print(format_figure4(figure4()))
    print()
    print("run `python -m repro.bench` for Tables 1-2 and the ablations")


if __name__ == "__main__":
    main()
