"""PARDIS across two OS processes, joined only by TCP.

The in-process examples put client and server in one interpreter; this
one splits them the way the paper's testbed did (two machines, one
link): a child process hosts the SPMD object behind a
:class:`SocketFabric`, the parent process runs the parallel client,
and a tiny TCP naming server (the PARDIS naming domain) introduces
them.  IORs minted in the child resolve and route correctly in the
parent because socket addresses are fully routable.

Run:  python examples/two_process_demo.py
"""

import subprocess
import sys

import numpy as np

from repro import ORB, compile_idl
from repro.orb.socketnet import (
    NamingServer,
    RemoteNamingClient,
    SocketFabric,
)

IDL = """
typedef dsequence<double, 16384> samples;

interface statistics {
    double mean(in samples data);
    double variance(in samples data);
    oneway void quit();
};
"""

idl = compile_idl(IDL, module_name="two_process_idl")


def run_server(naming_host: str, naming_port: int) -> None:
    """Child process: host the SPMD object until told to quit."""
    import threading

    done = threading.Event()

    class StatsServant(idl.statistics_skel):
        def _moments(self, data):
            from repro.rts.mpi import SUM

            local = data.local_data()
            n = data.length()
            if self.comm is None:
                return n, float(local.sum()), float((local**2).sum())
            sums = self.comm.allreduce(
                np.array([local.sum(), (local**2).sum()]), op=SUM
            )
            return n, float(sums[0]), float(sums[1])

        def mean(self, data):
            n, s1, _ = self._moments(data)
            return s1 / n if n else 0.0

        def variance(self, data):
            n, s1, s2 = self._moments(data)
            if not n:
                return 0.0
            mu = s1 / n
            return s2 / n - mu * mu

        def quit(self):
            done.set()

    fabric = SocketFabric("stats-server")
    orb = ORB(
        "stats-server",
        fabric=fabric,
        naming=RemoteNamingClient(naming_host, naming_port),
    )
    orb.serve("statistics", lambda ctx: StatsServant(), nthreads=4)
    print(
        f"server: object 'statistics' up on "
        f"{fabric.host}:{fabric.tcp_port} (4 threads)",
        flush=True,
    )
    done.wait(timeout=120)
    orb.shutdown()
    fabric.close()
    print("server: shut down cleanly", flush=True)


def run_client(naming_host: str, naming_port: int) -> None:
    """Parent process: a 2-thread parallel client."""
    fabric = SocketFabric("stats-client")
    orb = ORB(
        "stats-client",
        fabric=fabric,
        naming=RemoteNamingClient(naming_host, naming_port),
    )

    def client(c):
        stats = idl.statistics._spmd_bind("statistics", c.runtime)
        data = idl.samples.from_global(
            np.arange(10_000, dtype=np.float64), comm=c.comm
        )
        return stats.mean(data), stats.variance(data)

    results = orb.run_spmd_client(2, client)
    # Tell the server to exit — a non-collective interaction, so use a
    # per-thread binding (§2.1's plain _bind).
    runtime = orb.client_runtime(label="controller")
    idl.statistics._bind("statistics", runtime).quit()
    runtime.close()
    orb.shutdown()
    fabric.close()
    mean, variance = results[0]
    print(f"client: mean={mean:.1f} variance={variance:.1f}")
    assert mean == 4999.5
    assert abs(variance - (10_000**2 - 1) / 12) < 1e-6 * variance


def main() -> None:
    with NamingServer() as names:
        child = subprocess.Popen(
            [
                sys.executable,
                __file__,
                "--server",
                names.host,
                str(names.tcp_port),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            # Wait for the child to register before binding.
            import time

            for _ in range(200):
                try:
                    RemoteNamingClient(
                        names.host, names.tcp_port
                    ).resolve("statistics")
                    break
                except Exception:
                    time.sleep(0.05)
            run_client(names.host, names.tcp_port)
        finally:
            output, _ = child.communicate(timeout=30)
            print(output.rstrip())
        assert child.returncode == 0, "server process failed"
    print("two-process demo OK")


if __name__ == "__main__":
    if len(sys.argv) >= 4 and sys.argv[1] == "--server":
        run_server(sys.argv[2], int(sys.argv[3]))
    else:
        main()
