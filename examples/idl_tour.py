"""A tour of the IDL compiler: every construct the dialect supports.

Compiles a richer specification — modules, constants, enums, structs,
exceptions, attributes, inheritance, plain and distributed sequences,
preset distributions — shows a slice of the generated Python, and
exercises the result against a live servant.

Run:  python examples/idl_tour.py
"""

import numpy as np

from repro import ORB, compile_idl
from repro.idl import generate_python

IDL = """
module obs {
    const long MAX_CHANNELS = 1 << 4;
    const string VERSION = "pardis-" + "1.0";

    enum quality { RAW, CALIBRATED, REJECTED };

    struct reading {
        long channel;
        double value;
        quality grade;
    };

    exception bad_channel {
        long channel;
        string reason;
    };

    typedef sequence<reading> readings;
    typedef dsequence<double, 1024, proportions(1, 2, 1)> spectrum;

    interface instrument {
        readonly attribute string id;
        readings sample(in long count) raises (bad_channel);
        void accumulate(in long channel, inout spectrum bins)
            raises (bad_channel);
    };

    interface calibrated_instrument : instrument {
        double calibration_constant();
    };
};
"""

idl = compile_idl(IDL, module_name="tour_idl")
obs = idl.obs


class Instrument(obs.calibrated_instrument_skel):
    def _get_id(self):
        return f"spectrometer/{obs.VERSION}"

    def sample(self, count):
        if count > obs.MAX_CHANNELS:
            raise obs.bad_channel(
                channel=count, reason="beyond MAX_CHANNELS"
            )
        return [
            obs.reading(channel=i, value=i * 0.5, grade=obs.quality.RAW)
            for i in range(count)
        ]

    def accumulate(self, channel, bins):
        if channel < 0:
            raise obs.bad_channel(channel=channel, reason="negative")
        bins.local_data()[:] += float(channel)

    def calibration_constant(self):
        return 1.25


def main():
    print("=== generated code (first proxy class) ===")
    text = generate_python(IDL)
    start = text.index("class _idl_obs__instrument(")
    print(text[start : start + 420], "…\n")

    orb = ORB()
    orb.serve("spectro", lambda ctx: Instrument(), nthreads=3)

    def client(c):
        inst = obs.calibrated_instrument._spmd_bind("spectro", c.runtime)

        # Attribute (readonly -> property with getter only).
        ident = inst.id

        # Struct sequences as return values.
        readings = inst.sample(4)

        # Preset proportions(1,2,1) distribution: the server sees the
        # argument split 1:2:1 over its 3 threads.
        bins = obs.spectrum.from_global(np.zeros(16), comm=c.comm)
        inst.accumulate(7, bins)

        # Inherited + own operations on one proxy.
        k = inst.calibration_constant()

        # Declared exceptions arrive as the generated class.
        try:
            inst.sample(99)
            caught = None
        except obs.bad_channel as exc:
            caught = (exc.channel, exc.reason)
        return ident, readings, bins.allgather(), k, caught

    results = orb.run_spmd_client(2, client)
    orb.shutdown()

    ident, readings, bins, k, caught = results[0]
    print(f"instrument id        : {ident}")
    print(f"sample(4)            : {readings}")
    print(f"accumulated spectrum : {bins[:6]} ...")
    print(f"calibration constant : {k}")
    print(f"declared exception   : bad_channel{caught}")
    assert ident == "spectrometer/pardis-1.0"
    assert readings[2] == {
        "channel": 2,
        "value": 1.0,
        "grade": "RAW",
    }
    assert np.all(bins == 7.0)
    assert caught == (99, "beyond MAX_CHANNELS")
    print("IDL tour OK")


if __name__ == "__main__":
    main()
