"""A real SPMD diffusion service: 1-D heat equation with halo exchange.

This is the workload the paper's introduction motivates: a
data-parallel simulation (application B) offered as a service to
another parallel application (A).  The servant threads cooperate
through the server group's communicator — each step exchanges halo
cells with neighbour threads, exactly how an MPI diffusion code works —
while the ORB moves the distributed array between the client's and the
server's distributions.

Run:  python examples/diffusion_simulation.py
"""

import numpy as np

from repro import ORB, compile_idl

IDL = """
typedef dsequence<double, 8192> temperature_field;

interface heat_solver {
    // Advance the field `steps` explicit Euler steps with diffusion
    // coefficient alpha (scaled by 1e6 to stay an IDL long).
    void advance(in long steps, in long alpha_micro,
                 inout temperature_field field);
    // Total thermal energy of a field (a pure 'in' interaction).
    double energy(in temperature_field field);
};
"""

idl = compile_idl(IDL, module_name="diffusion_idl")


class HeatServant(idl.heat_solver_skel):
    """Explicit finite-difference heat solver, one thread per block."""

    _HALO_TAG = 77

    def _exchange_halos(self, local):
        """Swap boundary cells with neighbouring threads."""
        comm = self.comm
        left = np.array(0.0)
        right = np.array(0.0)
        if comm is None:
            return float(local[0]), float(local[-1])
        if self.rank > 0:
            comm.send(float(local[0]), dest=self.rank - 1, tag=self._HALO_TAG)
        if self.rank < self.size - 1:
            comm.send(
                float(local[-1]), dest=self.rank + 1, tag=self._HALO_TAG
            )
        left_halo = (
            comm.recv(source=self.rank - 1, tag=self._HALO_TAG)
            if self.rank > 0
            else float(local[0])  # insulated boundary
        )
        right_halo = (
            comm.recv(source=self.rank + 1, tag=self._HALO_TAG)
            if self.rank < self.size - 1
            else float(local[-1])
        )
        return left_halo, right_halo

    def advance(self, steps, alpha_micro, field):
        alpha = alpha_micro / 1e6
        local = field.local_data()
        for _ in range(steps):
            if len(local):
                left, right = self._exchange_halos(local)
                padded = np.concatenate(([left], local, [right]))
                local[:] = local + alpha * (
                    padded[:-2] - 2 * local + padded[2:]
                )
            if self.comm is not None:
                self.comm.barrier()

    def energy(self, field):
        total = float(field.local_data().sum())
        if self.comm is not None:
            from repro.rts.mpi import SUM

            total = self.comm.allreduce(total, op=SUM)
        return total


def main():
    n = 4096
    steps_per_round = 50
    rounds = 4
    orb = ORB()
    orb.serve("heat", lambda ctx: HeatServant(), nthreads=4)

    def client(c):
        solver = idl.heat_solver._spmd_bind("heat", c.runtime)
        # A hot spike in the middle of a cold bar.
        initial = np.zeros(n)
        initial[n // 2 - 4 : n // 2 + 4] = 100.0
        field = idl.temperature_field.from_global(initial, comm=c.comm)

        e0 = solver.energy(field)
        history = [e0]
        peaks = [float(initial.max())]
        for _ in range(rounds):
            solver.advance(steps_per_round, 240_000, field)  # alpha=0.24
            history.append(solver.energy(field))
            peaks.append(float(field.allgather().max()))
        return history, peaks, field.allgather()

    results = orb.run_spmd_client(2, client)
    orb.shutdown()

    history, peaks, final = results[0]
    print(f"grid: {n} cells, {rounds} rounds x {steps_per_round} steps")
    print("round  energy        peak")
    for i, (e, p) in enumerate(zip(history, peaks)):
        print(f"{i:5d}  {e:12.4f}  {p:8.3f}")
    # Physics checks: insulated bar conserves energy, diffusion
    # flattens the spike.
    assert abs(history[-1] - history[0]) < 1e-6 * abs(history[0])
    assert peaks[-1] < peaks[0]
    assert np.all(np.diff(peaks) < 0)
    print("energy conserved, spike flattened — diffusion service OK")


if __name__ == "__main__":
    main()
