"""Quickstart: the paper's §2.1 example, end to end.

A parallel application B computes diffusion on a distributed array; a
parallel application A wants that service.  B becomes an SPMD object,
A its client:

    interface diff_object {
        void diffusion(in long timestep, inout diff_array darray);
    };

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ORB, compile_idl

# 1. Specify the interface in IDL (the paper's example, verbatim).
IDL = """
typedef dsequence<double, 1024> diff_array;

interface diff_object {
    void diffusion(in long timestep, inout diff_array darray);
};
"""

idl = compile_idl(IDL, module_name="quickstart_idl")


# 2. Implement the servant: one instance runs on every computing
#    thread of the SPMD object, each seeing its local block.
class DiffusionServant(idl.diff_object_skel):
    def diffusion(self, timestep, darray):
        local = darray.local_data()
        # A stand-in diffusion kernel on the local block; a real one
        # appears in examples/diffusion_simulation.py.
        local += float(timestep)


def main():
    orb = ORB()
    # 3. Activate the SPMD object on 4 computing threads and register
    #    it with the naming domain as "example".
    orb.serve("example", lambda ctx: DiffusionServant(), nthreads=4)

    # 4. A parallel client (2 threads) binds collectively and invokes.
    def client(c):
        diff = idl.diff_object._spmd_bind("example", c.runtime)
        my_diff_array = idl.diff_array.from_global(
            np.zeros(1024), comm=c.comm
        )
        # Blocking invocation — the argument is updated in place,
        # travelling thread-to-thread via the multi-port method.
        diff.diffusion(64, my_diff_array)

        # Non-blocking invocation returning a future (§2.1): overlap
        # remote diffusion with local work.
        future = diff.diffusion_nb(36, my_diff_array)
        local_work = sum(i * i for i in range(10_000))
        future.value(timeout=30)

        if c.rank == 0:
            print(
                f"client thread 0: transfer method = "
                f"{diff.transfer_method}, local work = {local_work}"
            )
        return my_diff_array.allgather()

    results = orb.run_spmd_client(2, client)
    orb.shutdown()

    final = results[0]
    assert np.all(final == 100.0), "both invocations must have landed"
    print(f"sequence after diffusion(64) + diffusion(36): {final[:5]} ...")
    print("quickstart OK")


if __name__ == "__main__":
    main()
