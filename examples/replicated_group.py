"""Replicated object groups with client-side failover (repro.groups).

A counter service is served as a 3-replica *object group* behind one
logical name in a :class:`ShardedNaming` router.  The client binds
the group — not any one replica — with a retrying :class:`FtPolicy`,
then keeps invoking while the replica it is bound to is killed
abruptly (ports closed, no unbind: a crash, not a shutdown).  The
proxy exhausts its retries against the dead replica, fails over to a
sibling, and replays the interrupted invocations through the
sibling's reply cache, so the client sees every result and zero
errors.

``orb.stats()["groups"]`` shows the story afterwards: the bind, the
selections, the failover, and the router's health epoch bumping when
the dead replica is reported down.

Run:  python examples/replicated_group.py
"""

from repro import ORB, FtPolicy, compile_idl
from repro.groups import ShardedNaming

IDL = """
interface counter {
    double add(in double x);
};
"""

idl = compile_idl(IDL, module_name="replicated_group_idl")

#: Retries make failover possible: the policy classifies the dead
#: replica's timeouts as retry-worthy, and exhausted retries are the
#: signal that flips the proxy to a sibling (see docs/robustness.md).
POLICY = FtPolicy(max_retries=1, backoff_base_ms=2.0, backoff_cap_ms=10.0)

BURSTS = 4
PER_BURST = 6


class CounterServant(idl.counter_skel):
    def __init__(self):
        self.total = 0.0

    def add(self, x):
        self.total += x
        return self.total


def main():
    # The sharded router partitions plain names *and* group
    # directories across shards by consistent hashing; clients see
    # one flat naming surface.
    naming = ShardedNaming(shards=4)
    with ORB("groups-demo", naming=naming, timeout=0.3) as orb:
        # Three replicas behind the logical name 'counter', each
        # with a reply cache so post-failover replays dedup instead
        # of re-executing on the new target.
        group = orb.serve_replicated(
            "counter",
            lambda ctx: CounterServant(),
            replicas=3,
            reply_cache_bytes=1 << 20,
        )
        runtime = orb.client_runtime(label="demo")
        try:
            proxy = idl.counter._group_bind(
                "counter", runtime, ft_policy=POLICY
            )
            bound_to = proxy._group.current_replica()
            print(f"bound to group 'counter', replica {bound_to}")

            results = []
            for burst in range(BURSTS):
                futures = [
                    proxy.add_nb(1.0) for _ in range(PER_BURST)
                ]
                if burst == 1:
                    # Crash the bound replica while the burst is in
                    # flight: no unbind, no goodbye — its ports just
                    # close.
                    print(f"killing replica {bound_to} mid-burst")
                    group.kill(bound_to)
                results.extend(f.value(timeout=30.0) for f in futures)

            now = proxy._group.current_replica()
            assert len(results) == BURSTS * PER_BURST
            assert now != bound_to, "the binding never failed over"
            assert proxy._group.history, "no failover recorded"
            print(f"all {len(results)} invocations completed")
            print(f"failed over {bound_to} -> {now}: "
                  f"history {proxy._group.history}")

            stats = orb.stats()["groups"]
            print(f"group stats: binds={stats['binds']} "
                  f"failovers={stats['failovers']} "
                  f"marked_down={stats['marked_down']}")
            print(f"router epoch for 'counter': "
                  f"{stats['groups']['counter']['epoch']}")
            assert stats["failovers"] == 1
            print("OK")
        finally:
            runtime.close()
            group.shutdown()


if __name__ == "__main__":
    main()
