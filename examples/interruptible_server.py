"""An interruptible SPMD service (paper §2.1).

"PARDIS also allows the server to interrupt its computation in order
to process outstanding requests."  Here a long-running optimization
service periodically calls ``service_pending()``; a second client asks
for progress snapshots *while the optimization runs* and receives
answers immediately, instead of queueing behind the long request.

Run:  python examples/interruptible_server.py
"""

import threading
import time

import numpy as np

from repro import ORB, compile_idl

IDL = """
typedef dsequence<double, 4096> vector;

interface optimizer {
    // Long-running: gradient-descent-style relaxation.
    void solve(in long iterations, inout vector x);
    // Short: answer immediately, even mid-solve.
    long progress();
    double residual();
};
"""

idl = compile_idl(IDL, module_name="interrupt_idl")


class OptimizerServant(idl.optimizer_skel):
    """Relaxes x towards the minimum of sum((x - target)^2)/2."""

    def __init__(self):
        self._iteration = 0
        self._residual = float("inf")

    def solve(self, iterations, x):
        local = x.local_data()
        target = 5.0
        for i in range(int(iterations)):
            gradient = local - target
            local -= 0.1 * gradient
            self._iteration = i + 1
            self._residual = float(np.abs(gradient).max())
            # Yield to the ORB: progress queries queued by other
            # clients are answered here, mid-computation.
            self.service_pending()
            time.sleep(0.002)

    def progress(self):
        return self._iteration

    def residual(self):
        return self._residual


def main():
    orb = ORB()
    orb.serve("optimizer", lambda ctx: OptimizerServant(), nthreads=2)

    samples = []
    solving = threading.Event()

    def watcher():
        runtime = orb.client_runtime(label="watcher")
        proxy = idl.optimizer._bind("optimizer", runtime)
        solving.wait(10)
        while not samples or samples[-1][0] < 200:
            samples.append((proxy.progress(), proxy.residual()))
            time.sleep(0.01)
        runtime.close()

    watch_thread = threading.Thread(target=watcher)
    watch_thread.start()

    def solver_client(c):
        proxy = idl.optimizer._spmd_bind("optimizer", c.runtime)
        x = idl.vector.from_global(np.zeros(1000), comm=c.comm)
        solving.set()
        proxy.solve(200, x)
        return float(x.allgather().mean())

    results = orb.run_spmd_client(2, solver_client)
    watch_thread.join(30)
    orb.shutdown()

    print("mid-solve progress snapshots (iteration, residual):")
    for iteration, residual in samples[:: max(1, len(samples) // 8)]:
        print(f"  iter {iteration:4d}   residual {residual:.4f}")
    print(f"final mean(x) = {results[0]:.4f} (target 5.0)")

    assert abs(results[0] - 5.0) < 1e-6
    mid = [s for s in samples if 0 < s[0] < 200]
    assert mid, "watcher must observe the solve in flight"
    print(f"{len(mid)} snapshots answered mid-computation — "
          f"interruptible server OK")


if __name__ == "__main__":
    main()
