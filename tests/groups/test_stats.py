"""The ``groups`` section of ``orb.stats()`` and the snapshot
isolation contract of every section."""

import copy

import pytest

from repro import ORB, FtPolicy, compile_idl
from repro.groups import ShardedNaming

STATS_IDL = """
interface counter {
    double add(in double x);
};
"""

#: Every section the snapshot contract covers (trace is added when
#: tracing is on; the parametrization below turns it on for all).
SECTIONS = [
    "cdr_copies",
    "fabric",
    "ft",
    "groups",
    "reply_caches",
    "rts",
    "san",
    "trace",
    "transfer_schedule_cache",
]


@pytest.fixture(scope="module")
def idl():
    return compile_idl(STATS_IDL, module_name="groups_stats_idl")


def _active_orb(idl):
    """An ORB with live activity behind every stats section: a
    replicated group served, bound, invoked, and failed over."""
    orb = ORB(
        "groups-stats",
        naming=ShardedNaming(shards=2),
        timeout=0.3,
        trace=True,
    )

    class CounterServant(idl.counter_skel):
        def __init__(self):
            self.total = 0.0

        def add(self, x):
            self.total += x
            return self.total

    group = orb.serve_replicated(
        "ctr", lambda ctx: CounterServant(), replicas=3
    )
    runtime = orb.client_runtime()
    policy = FtPolicy(
        max_retries=1, backoff_base_ms=1.0, backoff_cap_ms=5.0
    )
    proxy = idl.counter._group_bind("ctr", runtime, ft_policy=policy)
    proxy.add(1.0)
    group.kill(proxy._group.current_replica())
    proxy.add(2.0)  # fails over
    group.report_health()
    return orb, group, runtime


class TestGroupsSection:
    def test_counters_and_board_reflect_the_run(self, idl):
        orb, group, runtime = _active_orb(idl)
        try:
            stats = orb.stats()["groups"]
            assert stats["binds"] == 1
            assert stats["failovers"] == 1
            # Initial selection plus the failover reselection.
            assert stats["selections"] == 2
            assert stats["marked_down"] == 1
            assert stats["epoch_bumps"] == 1
            # One report per member; the killed replica is still a
            # member (marked down, not removed), so it reports too.
            assert stats["health_reports"] == 3
            board = stats["groups"]["ctr"]
            assert board["replicas"] == 3
            assert board["down"] == 1
            assert board["epoch"] == 1
        finally:
            runtime.close()
            group.shutdown()
            orb.shutdown()

    def test_unbound_group_leaves_the_board(self, idl):
        orb, group, runtime = _active_orb(idl)
        try:
            group.shutdown()
            assert orb.stats()["groups"]["groups"] == {}
        finally:
            runtime.close()
            orb.shutdown()


class TestSnapshotIsolation:
    """``orb.stats()`` returns a deep copy at the snapshot boundary:
    mutating a returned snapshot never perturbs live state or an
    earlier snapshot, for EVERY section."""

    @pytest.fixture(scope="class")
    def live(self, idl):
        orb, group, runtime = _active_orb(idl)
        yield orb
        runtime.close()
        group.shutdown()
        orb.shutdown()

    @staticmethod
    def _corrupt(node):
        """Recursively trash a snapshot subtree in place."""
        if isinstance(node, dict):
            for key in list(node):
                TestSnapshotIsolation._corrupt(node[key])
                node[key] = "corrupted"
            node["injected"] = True
        elif isinstance(node, list):
            node.clear()

    @pytest.mark.parametrize("section", SECTIONS)
    def test_mutating_a_snapshot_does_not_leak(self, live, section):
        baseline = live.stats()
        assert section in baseline, f"section {section!r} missing"
        reference = copy.deepcopy(baseline[section])
        self._corrupt(baseline[section])
        again = live.stats()
        assert again[section] == reference

    @pytest.mark.parametrize("section", SECTIONS)
    def test_snapshots_are_independent_of_each_other(
        self, live, section
    ):
        first = live.stats()
        kept = copy.deepcopy(first[section])
        second = live.stats()
        self._corrupt(second[section])
        assert first[section] == kept
