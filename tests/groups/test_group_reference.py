"""Group references: GIOR stringification, parsing, member lookup."""

import pytest

from repro.orb.reference import (
    GroupReference,
    ObjectReference,
    parse_reference,
)
from repro.orb.transport import PortAddress


def make_ref(key, nports=0):
    return ObjectReference(
        object_key=key,
        repo_id="IDL:svc:1.0",
        request_port=PortAddress(1, f"req-{key}"),
        data_ports=tuple(
            PortAddress(10 + i, f"d-{key}-{i}") for i in range(nports)
        ),
        param_templates=((("op", "darray"), ("proportions", (2,))),),
    )


def make_group(loads=((1, 0.25),)):
    return GroupReference(
        group_name="svc",
        repo_id="IDL:svc:1.0",
        epoch=4,
        members=tuple(
            (rid, make_ref(f"svc#{rid}", nports=rid)) for rid in (0, 1, 2)
        ),
        loads=tuple(loads),
    )


class TestGiorRoundtrip:
    def test_roundtrip_preserves_everything(self):
        group = make_group()
        text = group.ior()
        assert text.startswith("GIOR:")
        back = GroupReference.from_ior(text)
        assert back == group

    def test_loads_round_to_milli_units(self):
        group = make_group(loads=((0, 1.2345),))
        back = GroupReference.from_ior(group.ior())
        assert back.load(0) == pytest.approx(1.234, abs=1e-9)

    def test_nested_member_references_survive(self):
        back = GroupReference.from_ior(make_group().ior())
        assert back.member(2).nthreads == 2
        assert back.member(2).template_spec("op", "darray") == (
            "proportions",
            (2,),
        )


class TestGiorErrors:
    def test_wrong_prefix(self):
        with pytest.raises(ValueError, match="not a stringified group"):
            GroupReference.from_ior("IOR:00")

    def test_non_hex_payload(self):
        with pytest.raises(ValueError, match="malformed GIOR"):
            GroupReference.from_ior("GIOR:zz")

    def test_truncated_payload(self):
        text = make_group().ior()
        with pytest.raises(ValueError, match="malformed GIOR"):
            GroupReference.from_ior(text[: len(text) // 2])


class TestAccessors:
    def test_replica_ids(self):
        assert make_group().replica_ids == (0, 1, 2)

    def test_member_lookup_raises_for_unknown(self):
        with pytest.raises(KeyError, match="no replica 9"):
            make_group().member(9)

    def test_load_is_none_when_unreported(self):
        group = make_group(loads=())
        assert group.load(0) is None

    def test_str_mentions_group_shape(self):
        text = str(make_group())
        assert "'svc'" in text and "3 replicas" in text


class TestParseReference:
    def test_dispatches_by_prefix(self):
        group = make_group()
        single = make_ref("solo")
        assert parse_reference(group.ior()) == group
        assert parse_reference(single.ior()) == single
