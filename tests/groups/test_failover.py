"""End-to-end group failover: the acceptance scenario (collective
kill mid-burst), serial failover, exhaustion, and the fail-fast
degeneration without a retrying policy."""

import threading

import pytest

from repro import ORB, FtPolicy, compile_idl
from repro.ft.policy import (
    DeadlineExceeded,
    InvocationRetriesExhausted,
)
from repro.groups import (
    FailoverExhausted,
    ShardedNaming,
    failover_worthy,
    serve_replicated,
)
from repro.groups import stats as groups_stats
from repro.orb.operation import RemoteError
from repro.orb.transport import TransportError

GROUP_IDL = """
interface counter {
    double add(in double x);
};
"""

#: Fast failure detection: one retry, short backoff; the dead replica
#: costs two 0.3 s attempt timeouts before failover engages.
RETRYING = FtPolicy(
    max_retries=1, backoff_base_ms=1.0, backoff_cap_ms=5.0
)


@pytest.fixture(scope="module")
def idl():
    return compile_idl(GROUP_IDL, module_name="groups_failover_idl")


def _factory(idl):
    class CounterServant(idl.counter_skel):
        def __init__(self):
            self.total = 0.0

        def add(self, x):
            self.total += x
            return self.total

    return lambda ctx: CounterServant()


@pytest.fixture
def orb():
    with ORB(
        "groups-test", naming=ShardedNaming(shards=2), timeout=0.3
    ) as orb:
        yield orb


class TestFailoverWorthy:
    def test_no_policy_means_fail_fast(self):
        exc = InvocationRetriesExhausted("add", attempts=2)
        assert not failover_worthy(exc, None)

    def test_exhausted_retries_and_deadlines_are_worthy(self):
        policy = FtPolicy(max_retries=1)
        assert failover_worthy(
            InvocationRetriesExhausted("add", attempts=2), policy
        )
        assert failover_worthy(DeadlineExceeded("add"), policy)

    def test_remote_errors_follow_the_retryable_categories(self):
        policy = FtPolicy(max_retries=1)
        assert failover_worthy(
            RemoteError("boom", category="COMM_FAILURE"), policy
        )
        assert not failover_worthy(
            RemoteError("boom", category="BAD_PARAM"), policy
        )

    def test_transport_errors_are_worthy(self):
        policy = FtPolicy(max_retries=1)
        assert failover_worthy(TransportError("port closed"), policy)

    def test_user_errors_are_not(self):
        assert not failover_worthy(
            ValueError("app bug"), FtPolicy(max_retries=1)
        )


class TestServeReplicated:
    def test_requires_a_sharded_naming(self, idl):
        with ORB("flat-naming") as orb:
            with pytest.raises(TypeError, match="ShardedNaming"):
                serve_replicated(orb, "ctr", _factory(idl))

    def test_requires_at_least_one_replica(self, orb, idl):
        with pytest.raises(ValueError, match="at least one replica"):
            orb.serve_replicated("ctr", _factory(idl), replicas=0)

    def test_replicas_are_visible_in_the_flat_namespace(self, orb, idl):
        group = orb.serve_replicated("ctr", _factory(idl), replicas=3)
        try:
            assert group.replica_ids == (0, 1, 2)
            flat = [n for n, _h in orb.naming.names()]
            assert {"ctr#0", "ctr#1", "ctr#2"} <= set(flat)
            assert orb.naming.is_group("ctr")
        finally:
            group.shutdown()

    def test_shutdown_unbinds_everything(self, orb, idl):
        group = orb.serve_replicated("ctr", _factory(idl), replicas=2)
        group.shutdown()
        assert not orb.naming.is_group("ctr")
        assert orb.naming.names() == []
        group.shutdown()  # idempotent

    def test_graceful_retirement_keeps_the_epoch(self, orb, idl):
        group = orb.serve_replicated("ctr", _factory(idl), replicas=3)
        try:
            group.shutdown_replica(1)
            ref = orb.naming.resolve_group("ctr")
            assert ref.replica_ids == (0, 2)
            # Planned removal is not a failure: no epoch bump.
            assert ref.epoch == 0
        finally:
            group.shutdown()

    def test_report_health_defaults_to_cache_occupancy(self, orb, idl):
        group = orb.serve_replicated("ctr", _factory(idl), replicas=2)
        try:
            group.report_health()
            ref = orb.naming.resolve_group("ctr")
            assert ref.load(0) == 0.0 and ref.load(1) == 0.0
            group.report_health({1: 7.5})
            assert orb.naming.resolve_group("ctr").load(1) == 7.5
        finally:
            group.shutdown()


class TestSerialFailover:
    def test_failover_after_kill_is_transparent(self, orb, idl):
        group = orb.serve_replicated("ctr", _factory(idl), replicas=3)
        runtime = orb.client_runtime()
        try:
            proxy = idl.counter._group_bind(
                "ctr", runtime, ft_policy=RETRYING
            )
            first = proxy._group.current_replica()
            assert proxy.add(1.0) == 1.0
            group.kill(first)
            # The next invocation fails over and completes; the new
            # replica is a fresh servant, so its counter starts over.
            assert proxy.add(2.0) == 2.0
            second = proxy._group.current_replica()
            assert second != first
            assert proxy._group.history == [(1, first, second)]
            assert runtime.ft_stats.snapshot()["failovers"] == 1
            # Rank 0 reported the failure: the router marked the
            # replica down and bumped the health epoch.
            assert orb.naming.epoch("ctr") == 1
            assert first not in orb.naming.resolve_group(
                "ctr"
            ).replica_ids
        finally:
            runtime.close()
            group.shutdown()

    def test_without_policy_the_binding_fails_fast(self, orb, idl):
        group = orb.serve_replicated("ctr", _factory(idl), replicas=3)
        runtime = orb.client_runtime()
        try:
            proxy = idl.counter._group_bind("ctr", runtime)
            group.kill(proxy._group.current_replica())
            with pytest.raises((RemoteError, TransportError)) as err:
                proxy.add(1.0)
            assert not isinstance(err.value, FailoverExhausted)
            assert proxy._group.history == []
        finally:
            runtime.close()
            group.shutdown()

    def test_all_replicas_dead_exhausts_the_walk(self, orb, idl):
        group = orb.serve_replicated("ctr", _factory(idl), replicas=3)
        runtime = orb.client_runtime()
        try:
            proxy = idl.counter._group_bind(
                "ctr", runtime, ft_policy=RETRYING
            )
            for rid in group.replica_ids:
                group.kill(rid)
            with pytest.raises(FailoverExhausted) as err:
                proxy.add(1.0)
            # The walk visited every replica exactly once.
            assert sorted(err.value.replicas_tried) == [0, 1, 2]
            assert err.value.group == "ctr"
            assert (
                groups_stats.stats()["failovers_exhausted"] == 1
            )
        finally:
            runtime.close()
            group.shutdown()

    def test_max_failovers_caps_the_walk(self, orb, idl):
        group = orb.serve_replicated("ctr", _factory(idl), replicas=3)
        runtime = orb.client_runtime()
        try:
            policy = FtPolicy(
                max_retries=1,
                backoff_base_ms=1.0,
                backoff_cap_ms=5.0,
                max_failovers=0,
            )
            proxy = idl.counter._group_bind(
                "ctr", runtime, ft_policy=policy
            )
            group.kill(proxy._group.current_replica())
            with pytest.raises(FailoverExhausted):
                proxy.add(1.0)
            # Budget zero: the binding never flipped.
            assert proxy._group.history == []
        finally:
            runtime.close()
            group.shutdown()

    def test_least_loaded_bind_follows_health_reports(self, orb, idl):
        group = orb.serve_replicated("ctr", _factory(idl), replicas=3)
        runtime = orb.client_runtime()
        try:
            group.report_health({0: 5.0, 1: 0.5, 2: 5.0})
            proxy = idl.counter._group_bind(
                "ctr",
                runtime,
                selection="least-loaded",
                ft_policy=RETRYING,
            )
            assert proxy._group.current_replica() == 1
            assert proxy.add(1.0) == 1.0
        finally:
            runtime.close()
            group.shutdown()


class TestCollectiveFailover:
    def test_kill_mid_burst_is_invisible_and_rank_identical(self, idl):
        """The acceptance scenario: a 3-replica group, a 4-rank
        pipelined client, the bound replica killed while a burst is
        in flight — zero client-visible errors and byte-identical
        failover decisions on every rank."""
        naming = ShardedNaming(shards=2)
        with ORB("groups-accept", naming=naming, timeout=0.4) as orb:
            group = orb.serve_replicated(
                "ctr", _factory(idl), replicas=3
            )
            killed = threading.Event()

            def client(ctx):
                proxy = idl.counter._group_bind(
                    "ctr", ctx.runtime, ft_policy=RETRYING
                )
                results, errors = [], []
                for burst in range(4):
                    futures = [
                        proxy.add_nb(1.0) for _ in range(6)
                    ]
                    if (
                        burst == 1
                        and ctx.rank == 0
                        and not killed.is_set()
                    ):
                        killed.set()
                        group.kill(proxy._group.current_replica())
                    for future in futures:
                        try:
                            results.append(future.value(timeout=30.0))
                        except Exception as exc:  # client-visible
                            errors.append(repr(exc))
                return (
                    ctx.rank,
                    proxy._group.current_replica(),
                    tuple(proxy._group.history),
                    len(results),
                    errors,
                )

            try:
                rows = orb.run_spmd_client(4, client)
            finally:
                group.shutdown()

            assert all(not row[4] for row in rows), rows
            assert all(row[3] == 24 for row in rows)
            # Every rank made the same failover decision at the same
            # point: identical histories, identical final target.
            histories = {row[2] for row in rows}
            assert len(histories) == 1
            (history,) = histories
            assert len(history) == 1
            assert len({row[1] for row in rows}) == 1
            # The router heard about it exactly once.
            snap = groups_stats.stats()
            assert snap["marked_down"] == 1
            assert snap["epoch_bumps"] == 1
