"""The sharded naming router: flat surface routing, the group
directory, health epochs, and bind tokens."""

import pytest

from repro.groups import ShardedNaming
from repro.groups import stats as groups_stats
from repro.orb.naming import NamingError
from repro.orb.reference import ObjectReference
from repro.orb.transport import PortAddress


def make_ref(key):
    return ObjectReference(
        object_key=key,
        repo_id="IDL:svc:1.0",
        request_port=PortAddress(1, f"req-{key}"),
        data_ports=(),
        param_templates=(),
    )


@pytest.fixture
def naming():
    return ShardedNaming(shards=4)


class TestFlatSurface:
    def test_bind_resolve_across_shards(self, naming):
        names = [f"svc-{i}" for i in range(20)]
        for name in names:
            naming.bind(name, make_ref(name))
        # The 20 names actually spread over multiple shards...
        assert len({naming.shard_for(n) for n in names}) > 1
        # ...but resolve as one flat namespace.
        for name in names:
            assert naming.resolve(name).object_key == name

    def test_rebind_and_unbind_route_to_the_owner(self, naming):
        naming.bind("svc", make_ref("old"))
        naming.rebind("svc", make_ref("new"))
        assert naming.resolve("svc").object_key == "new"
        naming.unbind("svc")
        with pytest.raises(NamingError, match="no object bound"):
            naming.resolve("svc")

    def test_names_reads_as_one_sorted_namespace(self, naming):
        for name in ("zeta", "alpha", "mid"):
            naming.bind(name, make_ref(name))
        assert [n for n, _h in naming.names()] == [
            "alpha",
            "mid",
            "zeta",
        ]

    def test_host_scoping_passes_through(self, naming):
        naming.bind("svc", make_ref("a"), host="h1")
        naming.bind("svc", make_ref("b"), host="h2")
        assert naming.resolve("svc", "h2").object_key == "b"
        with pytest.raises(NamingError, match="several hosts"):
            naming.resolve("svc")

    def test_shard_validation(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedNaming(shards=0)
        assert ShardedNaming(shards=1).nshards == 1


class TestGroupDirectory:
    def _bind_group(self, naming, name="grp", rids=(0, 1, 2)):
        naming.bind_group(
            name,
            "IDL:svc:1.0",
            {rid: make_ref(f"{name}#{rid}") for rid in rids},
        )

    def test_bind_resolve_group(self, naming):
        self._bind_group(naming)
        group = naming.resolve_group("grp")
        assert group.replica_ids == (0, 1, 2)
        assert group.epoch == 0
        assert naming.is_group("grp")
        assert naming.group_names() == ["grp"]

    def test_duplicate_group_rejected(self, naming):
        self._bind_group(naming)
        with pytest.raises(NamingError, match="already bound"):
            self._bind_group(naming)

    def test_empty_name_and_empty_membership_rejected(self, naming):
        with pytest.raises(NamingError, match="cannot be empty"):
            naming.bind_group("", "IDL:svc:1.0", {0: make_ref("x")})
        with pytest.raises(NamingError, match="at least one replica"):
            naming.bind_group("grp", "IDL:svc:1.0", {})

    def test_unbind_group(self, naming):
        self._bind_group(naming)
        naming.unbind_group("grp")
        assert not naming.is_group("grp")
        with pytest.raises(NamingError, match="no group bound"):
            naming.resolve_group("grp")
        with pytest.raises(NamingError, match="no group bound"):
            naming.unbind_group("grp")

    def test_groups_and_flat_names_share_the_namespace(self, naming):
        self._bind_group(naming)
        naming.bind("grp#0", make_ref("grp#0"))
        assert naming.resolve("grp#0").object_key == "grp#0"
        assert naming.is_group("grp")

    def test_add_and_remove_member(self, naming):
        self._bind_group(naming, rids=(0, 1))
        naming.add_member("grp", 2, make_ref("grp#2"))
        assert naming.resolve_group("grp").replica_ids == (0, 1, 2)
        with pytest.raises(NamingError, match="already has replica 2"):
            naming.add_member("grp", 2, make_ref("grp#2"))
        naming.remove_member("grp", 1)
        assert naming.resolve_group("grp").replica_ids == (0, 2)
        with pytest.raises(NamingError, match="no replica 1"):
            naming.remove_member("grp", 1)

    def test_readded_replica_sheds_its_down_mark(self, naming):
        self._bind_group(naming)
        naming.mark_down("grp", 1)
        naming.remove_member("grp", 1)
        naming.add_member("grp", 1, make_ref("grp#1-reborn"))
        assert 1 in naming.resolve_group("grp").replica_ids


class TestHealthEpochs:
    def _bind_group(self, naming, rids=(0, 1, 2)):
        naming.bind_group(
            "grp",
            "IDL:svc:1.0",
            {rid: make_ref(f"grp#{rid}") for rid in rids},
        )

    def test_mark_down_bumps_epoch_once(self, naming):
        self._bind_group(naming)
        assert naming.epoch("grp") == 0
        assert naming.mark_down("grp", 0) == 1
        # Idempotent: a second client agreeing on the same failure
        # does not bump again.
        assert naming.mark_down("grp", 0) == 1
        assert naming.mark_down("grp", 1) == 2
        snap = groups_stats.stats()
        assert snap["marked_down"] == 2
        assert snap["epoch_bumps"] == 2

    def test_resolve_excludes_down_replicas(self, naming):
        self._bind_group(naming)
        naming.mark_down("grp", 1)
        group = naming.resolve_group("grp")
        assert group.replica_ids == (0, 2)
        assert group.epoch == 1

    def test_all_down_resolution_fails(self, naming):
        self._bind_group(naming, rids=(0,))
        naming.mark_down("grp", 0)
        with pytest.raises(NamingError, match="no live replicas"):
            naming.resolve_group("grp")

    def test_mark_down_unknown_replica(self, naming):
        self._bind_group(naming)
        with pytest.raises(NamingError, match="no replica 7"):
            naming.mark_down("grp", 7)

    def test_health_reports_feed_resolution(self, naming):
        self._bind_group(naming)
        naming.report_health("grp", 1, 2.5)
        group = naming.resolve_group("grp")
        assert group.load(1) == 2.5
        assert group.load(0) is None
        with pytest.raises(NamingError, match="no replica 9"):
            naming.report_health("grp", 9, 1.0)

    def test_membership_board_tracks_the_directory(self, naming):
        self._bind_group(naming)
        naming.mark_down("grp", 2)
        board = groups_stats.stats()["groups"]["grp"]
        assert board == {"replicas": 3, "down": 1, "epoch": 1}
        naming.unbind_group("grp")
        assert "grp" not in groups_stats.stats()["groups"]


class TestBindTokens:
    def test_tokens_are_monotonic_per_group(self, naming):
        naming.bind_group(
            "grp", "IDL:svc:1.0", {0: make_ref("grp#0")}
        )
        naming.bind_group(
            "other", "IDL:svc:1.0", {0: make_ref("other#0")}
        )
        assert [naming.next_bind_token("grp") for _ in range(3)] == [
            0,
            1,
            2,
        ]
        # Independent counter per group.
        assert naming.next_bind_token("other") == 0

    def test_token_for_unknown_group(self, naming):
        with pytest.raises(NamingError, match="no group bound"):
            naming.next_bind_token("grp")
