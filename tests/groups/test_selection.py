"""Replica selection: views, policies, and the policy registry."""

import pytest

from repro.groups.select import (
    GroupView,
    LeastLoaded,
    RoundRobin,
    SelectionError,
    SelectionPolicy,
    policy_for,
)
from repro.orb.reference import GroupReference, ObjectReference
from repro.orb.transport import PortAddress


def make_ref(key):
    return ObjectReference(
        object_key=key,
        repo_id="IDL:svc:1.0",
        request_port=PortAddress(1, f"req-{key}"),
        data_ports=(),
        param_templates=(),
    )


def make_view(replica_ids=(0, 1, 2), loads=(), down=(), epoch=0):
    group = GroupReference(
        group_name="svc",
        repo_id="IDL:svc:1.0",
        epoch=epoch,
        members=tuple(
            (rid, make_ref(f"svc#{rid}")) for rid in replica_ids
        ),
        loads=tuple(loads),
    )
    return GroupView(group=group, down=frozenset(down))


class TestGroupView:
    def test_alive_is_ascending_and_skips_down(self):
        view = make_view((2, 0, 1), down=(1,))
        assert view.alive() == (0, 2)

    def test_without_is_immutable_accumulation(self):
        view = make_view()
        narrowed = view.without(0).without(2)
        assert narrowed.alive() == (1,)
        assert view.alive() == (0, 1, 2)  # original untouched

    def test_ref_and_load(self):
        view = make_view(loads=((1, 2.5),))
        assert view.ref(1).object_key == "svc#1"
        assert view.load(1) == 2.5
        assert view.load(0) is None

    def test_name_and_epoch(self):
        view = make_view(epoch=3)
        assert view.name == "svc"
        assert view.epoch == 3


class TestRoundRobin:
    def test_rotates_by_token(self):
        view = make_view()
        picks = [RoundRobin().choose(view, t) for t in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_down_replicas(self):
        view = make_view(down=(0,))
        picks = [RoundRobin().choose(view, t) for t in range(4)]
        assert picks == [1, 2, 1, 2]

    def test_no_live_replica_raises(self):
        view = make_view(down=(0, 1, 2))
        with pytest.raises(SelectionError, match="no live replicas"):
            RoundRobin().choose(view, 0)


class TestLeastLoaded:
    def test_picks_lowest_reported_load(self):
        view = make_view(loads=((0, 5.0), (1, 1.0), (2, 9.0)))
        assert LeastLoaded().choose(view, 0) == 1
        assert LeastLoaded().choose(view, 7) == 1  # token-independent

    def test_unreported_counts_as_idle(self):
        # Replica 1 never reported: an idle newcomer attracts work.
        view = make_view(loads=((0, 2.0), (2, 3.0)))
        assert LeastLoaded().choose(view, 0) == 1

    def test_ties_rotate_by_token(self):
        view = make_view(loads=((0, 1.0), (1, 1.0), (2, 8.0)))
        picks = [LeastLoaded().choose(view, t) for t in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_ignores_down_replicas(self):
        view = make_view(loads=((1, 0.0),), down=(1,))
        assert LeastLoaded().choose(view, 0) in (0, 2)


class TestPolicyFor:
    def test_names_resolve(self):
        assert isinstance(policy_for("round-robin"), RoundRobin)
        assert isinstance(policy_for("least-loaded"), LeastLoaded)

    def test_instances_pass_through(self):
        policy = RoundRobin()
        assert policy_for(policy) is policy

    def test_custom_subclass_passes_through(self):
        class Pinned(SelectionPolicy):
            def choose(self, view, token):
                return self._require_alive(view)[0]

        pinned = Pinned()
        assert policy_for(pinned) is pinned
        assert pinned.choose(make_view(down=(0,)), 5) == 1

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown selection"):
            policy_for("random")
        with pytest.raises(ValueError, match="unknown selection"):
            policy_for(42)
