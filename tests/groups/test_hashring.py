"""Consistent hashing: determinism, validation, spread, remap bound."""

import pytest

from repro.groups.hashring import HashRing, stable_hash

KEYS = [f"object-{i}" for i in range(2000)]


class TestStableHash:
    def test_deterministic_and_64_bit(self):
        assert stable_hash("solver") == stable_hash("solver")
        assert 0 <= stable_hash("solver") < 2**64

    def test_distinct_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")


class TestHashRing:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one node"):
            HashRing([])
        with pytest.raises(ValueError, match="unique"):
            HashRing(["a", "a"])
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(["a"], vnodes=0)

    def test_node_for_is_deterministic_and_a_member(self):
        ring = HashRing(["s0", "s1", "s2"])
        for key in KEYS[:50]:
            owner = ring.node_for(key)
            assert owner in {"s0", "s1", "s2"}
            assert ring.node_for(key) == owner

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.node_for(k) == "only" for k in KEYS[:20])

    def test_spread_reaches_every_node(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        spread = ring.spread(KEYS)
        assert sum(spread.values()) == len(KEYS)
        # With 64 vnodes per shard the partition is roughly uniform;
        # generous bounds keep the test hash-stable, not flaky.
        for count in spread.values():
            assert 0.10 * len(KEYS) < count < 0.45 * len(KEYS)

    def test_adding_a_node_remaps_only_a_fraction(self):
        # The point of consistent hashing: growing 4 -> 5 shards moves
        # ~1/5 of the keys, not all of them.
        before = HashRing([f"s{i}" for i in range(4)])
        after = HashRing([f"s{i}" for i in range(5)])
        moved = sum(
            1 for k in KEYS if before.node_for(k) != after.node_for(k)
        )
        assert moved < 0.40 * len(KEYS)
        # Keys that moved all landed on the new shard.
        for key in KEYS:
            if before.node_for(key) != after.node_for(key):
                assert after.node_for(key) == "s4"
