"""Groups-suite fixtures: a clean process-wide ledger per test.

The groups counters (:data:`repro.groups.stats.GLOBAL`) are
process-wide like the sanitizer's; tests that assert on absolute
counts need each test to start from zero.
"""

import pytest

from repro.groups import stats as groups_stats


@pytest.fixture(autouse=True)
def _fresh_groups_ledger():
    groups_stats.GLOBAL.reset()
    yield
    groups_stats.GLOBAL.reset()
