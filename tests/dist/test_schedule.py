"""Unit and property tests for transfer schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import (
    BlockTemplate,
    Layout,
    Proportions,
    clear_schedule_cache,
    schedule_cache_stats,
    transfer_schedule,
)
from repro.dist.schedule import steps_by_dst, steps_by_src
from repro.dist.template import DistributionError


class TestBasics:
    def test_identical_layouts_give_one_local_step_per_rank(self):
        layout = BlockTemplate(4).layout(16)
        steps = transfer_schedule(layout, layout)
        assert len(steps) == 4
        for r, step in enumerate(steps):
            assert step.src_rank == r and step.dst_rank == r
            assert (step.global_lo, step.global_hi) == layout.local_range(r)
            assert step.src_offset == 0 and step.dst_offset == 0

    def test_gather_to_single_rank(self):
        src = BlockTemplate(4).layout(16)
        dst = Layout(((0, 16),))
        steps = transfer_schedule(src, dst)
        assert len(steps) == 4
        assert all(s.dst_rank == 0 for s in steps)
        assert [s.dst_offset for s in steps] == [0, 4, 8, 12]

    def test_scatter_from_single_rank(self):
        src = Layout(((0, 16),))
        dst = BlockTemplate(4).layout(16)
        steps = transfer_schedule(src, dst)
        assert len(steps) == 4
        assert all(s.src_rank == 0 for s in steps)
        assert [s.src_offset for s in steps] == [0, 4, 8, 12]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DistributionError):
            transfer_schedule(
                BlockTemplate(2).layout(10), BlockTemplate(2).layout(12)
            )

    def test_misaligned_blocks_split(self):
        src = Layout(((0, 6), (6, 12)))
        dst = Layout(((0, 4), (4, 8), (8, 12)))
        steps = transfer_schedule(src, dst)
        expected = {
            (0, 0, 0, 4),
            (0, 1, 4, 6),
            (1, 1, 6, 8),
            (1, 2, 8, 12),
        }
        got = {(s.src_rank, s.dst_rank, s.global_lo, s.global_hi)
               for s in steps}
        assert got == expected

    def test_empty_source_ranks_send_nothing(self):
        src = Layout(((0, 0), (0, 10)))
        dst = BlockTemplate(2).layout(10)
        steps = transfer_schedule(src, dst)
        assert all(s.src_rank == 1 for s in steps)

    def test_zero_length(self):
        assert transfer_schedule(Layout(((0, 0),)), Layout(((0, 0),))) == []

    def test_ordering_by_src_then_dst(self):
        src = Layout(((0, 8), (8, 12)))
        dst = Layout(((0, 2), (2, 9), (9, 12)))
        steps = transfer_schedule(src, dst)
        keys = [(s.src_rank, s.dst_rank) for s in steps]
        assert keys == sorted(keys)

    def test_grouping_helpers(self):
        src = Layout(((0, 6), (6, 12)))
        dst = Layout(((0, 4), (4, 12)))
        steps = transfer_schedule(src, dst)
        assert set(steps_by_src(steps)) == {0, 1}
        assert set(steps_by_dst(steps)) == {0, 1}
        assert sum(len(v) for v in steps_by_src(steps).values()) == len(steps)


def apply_schedule(src_layout, dst_layout, data):
    """Move data between layouts through the schedule, returning the
    per-destination-rank blocks — the reference executor the property
    tests check against."""
    steps = transfer_schedule(src_layout, dst_layout)
    blocks = [
        np.full(dst_layout.local_length(r), -1, dtype=data.dtype)
        for r in range(dst_layout.nranks)
    ]
    for step in steps:
        src_lo, _ = src_layout.local_range(step.src_rank)
        local = data[src_lo : src_layout.local_range(step.src_rank)[1]]
        blocks[step.dst_rank][step.dst_slice] = local[step.src_slice]
    return blocks


layouts = st.integers(0, 200).flatmap(
    lambda n: st.lists(
        st.integers(0, 40), min_size=1, max_size=8
    ).filter(lambda w: any(x > 0 for x in w)).map(
        lambda weights: Proportions(*weights).layout(n)
    )
)


@st.composite
def layout_pairs(draw):
    """Two layouts over the same global length, arbitrary rank counts."""
    length = draw(st.integers(0, 200))

    def make(weights):
        return Proportions(*weights).layout(length)

    weights_a = draw(
        st.lists(st.integers(0, 40), min_size=1, max_size=8).filter(
            lambda w: any(x > 0 for x in w)
        )
    )
    weights_b = draw(
        st.lists(st.integers(0, 40), min_size=1, max_size=8).filter(
            lambda w: any(x > 0 for x in w)
        )
    )
    return make(weights_a), make(weights_b)


class TestScheduleProperties:
    @given(layout_pairs())
    @settings(max_examples=200)
    def test_every_element_moves_exactly_once(self, pair):
        src, dst = pair
        steps = transfer_schedule(src, dst)
        covered = np.zeros(src.length, dtype=int)
        for step in steps:
            covered[step.global_lo : step.global_hi] += 1
        assert (covered == 1).all()

    @given(layout_pairs())
    @settings(max_examples=200)
    def test_steps_respect_ownership(self, pair):
        src, dst = pair
        for step in transfer_schedule(src, dst):
            s_lo, s_hi = src.local_range(step.src_rank)
            d_lo, d_hi = dst.local_range(step.dst_rank)
            assert s_lo <= step.global_lo < step.global_hi <= s_hi
            assert d_lo <= step.global_lo < step.global_hi <= d_hi
            assert step.src_offset == step.global_lo - s_lo
            assert step.dst_offset == step.global_lo - d_lo

    @given(layout_pairs())
    @settings(max_examples=200)
    def test_applying_schedule_preserves_data(self, pair):
        src, dst = pair
        data = np.arange(src.length, dtype=np.int64)
        blocks = apply_schedule(src, dst, data)
        reassembled = (
            np.concatenate(blocks) if blocks else np.zeros(0, dtype=np.int64)
        )
        np.testing.assert_array_equal(reassembled, data)

    @given(layout_pairs())
    @settings(max_examples=200)
    def test_schedule_is_minimal(self, pair):
        # One step per overlapping (src, dst) pair: no pair repeats.
        src, dst = pair
        steps = transfer_schedule(src, dst)
        pairs = [(s.src_rank, s.dst_rank) for s in steps]
        assert len(pairs) == len(set(pairs))

    @given(layouts)
    @settings(max_examples=100)
    def test_identity_schedule_is_all_local(self, layout):
        for step in transfer_schedule(layout, layout):
            assert step.src_rank == step.dst_rank


class TestScheduleCache:
    """The LRU over layout pairs (schedules are pure in the layouts)."""

    def setup_method(self):
        clear_schedule_cache()

    def teardown_method(self):
        clear_schedule_cache()

    def test_second_lookup_hits(self):
        src = BlockTemplate(4).layout(16)
        dst = Layout(((0, 16),))
        first = transfer_schedule(src, dst)
        stats = schedule_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0
        second = transfer_schedule(src, dst)
        stats = schedule_cache_stats()
        assert stats["hits"] == 1 and stats["entries"] == 1
        assert second == first

    def test_direction_is_part_of_the_key(self):
        a = BlockTemplate(2).layout(8)
        b = Layout(((0, 8),))
        transfer_schedule(a, b)
        transfer_schedule(b, a)
        stats = schedule_cache_stats()
        assert stats["misses"] == 2 and stats["entries"] == 2

    def test_returned_list_is_caller_owned(self):
        # Mutating what transfer_schedule returned must not poison
        # later lookups of the same pair.
        src = BlockTemplate(2).layout(8)
        dst = Layout(((0, 8),))
        stolen = transfer_schedule(src, dst)
        pristine = list(stolen)
        stolen.clear()
        assert transfer_schedule(src, dst) == pristine

    def test_eviction_is_least_recently_used(self):
        from repro.dist.schedule import _schedule_cache

        old_size = _schedule_cache.maxsize
        _schedule_cache.maxsize = 2
        try:
            pairs = [
                (Layout(((0, n),)), BlockTemplate(2).layout(n))
                for n in (8, 12, 16)
            ]
            transfer_schedule(*pairs[0])
            transfer_schedule(*pairs[1])
            transfer_schedule(*pairs[0])  # refresh 0: now 1 is LRU
            transfer_schedule(*pairs[2])  # evicts 1
            assert schedule_cache_stats()["entries"] == 2
            before = schedule_cache_stats()["hits"]
            transfer_schedule(*pairs[0])
            transfer_schedule(*pairs[2])
            assert schedule_cache_stats()["hits"] == before + 2
            transfer_schedule(*pairs[1])  # evicted: must recompute
            assert schedule_cache_stats()["hits"] == before + 2
        finally:
            _schedule_cache.maxsize = old_size
