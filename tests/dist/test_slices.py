"""Collective slice reads on distributed sequences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import DistributedSequence, Proportions
from repro.rts import spmd_run


class TestSerialSlices:
    def test_basic_slice(self):
        seq = DistributedSequence.from_global(np.arange(10.0))
        np.testing.assert_array_equal(seq[2:5], [2.0, 3.0, 4.0])

    def test_open_ended(self):
        seq = DistributedSequence.from_global(np.arange(6.0))
        np.testing.assert_array_equal(seq[:3], [0, 1, 2])
        np.testing.assert_array_equal(seq[3:], [3, 4, 5])
        np.testing.assert_array_equal(seq[:], np.arange(6.0))

    def test_negative_indices(self):
        seq = DistributedSequence.from_global(np.arange(8.0))
        np.testing.assert_array_equal(seq[-3:-1], [5.0, 6.0])

    def test_clamping(self):
        seq = DistributedSequence.from_global(np.arange(4.0))
        np.testing.assert_array_equal(seq[2:99], [2.0, 3.0])
        assert len(seq[5:9]) == 0
        assert len(seq[3:1]) == 0

    def test_strided_slice_rejected(self):
        seq = DistributedSequence.from_global(np.arange(4.0))
        with pytest.raises(IndexError, match="unit-stride"):
            seq[::2]

    def test_slice_is_a_copy(self):
        seq = DistributedSequence.from_global(np.arange(4.0))
        view = seq[0:2]
        view[:] = -1
        assert seq[0] == 0.0


class TestSpmdSlices:
    def test_slice_spanning_blocks(self):
        def body(ctx):
            seq = DistributedSequence.from_global(
                np.arange(12.0), comm=ctx.comm
            )
            return seq[2:9]

        for result in spmd_run(4, body):
            np.testing.assert_array_equal(
                result, np.arange(2.0, 9.0)
            )

    @given(
        length=st.integers(0, 80),
        nranks=st.integers(1, 5),
        start=st.integers(-90, 90),
        stop=st.integers(-90, 90),
        weights=st.lists(st.integers(0, 5), min_size=1, max_size=5).filter(
            lambda w: any(w)
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_numpy_semantics(
        self, length, nranks, start, stop, weights
    ):
        weights = (weights * nranks)[:nranks]
        if not any(weights):
            weights[0] = 1
        data = np.arange(length, dtype=np.float64)

        def body(ctx):
            seq = DistributedSequence.from_global(
                data, comm=ctx.comm, template=Proportions(*weights)
            )
            return seq[start:stop]

        expected = data[slice(start, stop)]
        for result in spmd_run(nranks, body):
            np.testing.assert_array_equal(result, expected)
