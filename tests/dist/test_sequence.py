"""Tests for DistributedSequence — serial and SPMD behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import (
    BlockTemplate,
    DistributedSequence,
    ExplicitTemplate,
    Proportions,
)
from repro.dist.template import DistributionError
from repro.rts import spmd_run


class TestSerialSequence:
    def test_default_blockwise_single_rank(self):
        seq = DistributedSequence(10)
        assert seq.length() == 10
        assert seq.local_length() == 10
        np.testing.assert_array_equal(seq.local_data(), np.zeros(10))

    def test_len_dunder(self):
        assert len(DistributedSequence(7)) == 7

    def test_dtype(self):
        seq = DistributedSequence(4, dtype=np.int32)
        assert seq.dtype == np.int32

    def test_element_access(self):
        seq = DistributedSequence(5)
        seq[2] = 3.5
        assert seq[2] == 3.5
        assert seq[-3] == 3.5

    def test_access_beyond_length_is_error(self):
        seq = DistributedSequence(5)
        with pytest.raises(IndexError):
            seq[5]
        with pytest.raises(IndexError):
            seq[5] = 1.0

    def test_bound_enforced_at_construction(self):
        with pytest.raises(DistributionError):
            DistributedSequence(2000, bound=1024)

    def test_bound_enforced_on_growth(self):
        seq = DistributedSequence(1000, bound=1024)
        seq.set_length(1024)
        with pytest.raises(DistributionError):
            seq.set_length(1025)

    def test_negative_length_rejected(self):
        with pytest.raises(DistributionError):
            DistributedSequence(-1)

    def test_shrink_then_grow_zero_fills(self):
        seq = DistributedSequence(4)
        seq.local_data()[:] = [1, 2, 3, 4]
        seq.set_length(2)
        np.testing.assert_array_equal(seq.local_data(), [1, 2])
        seq.set_length(4)
        np.testing.assert_array_equal(seq.local_data(), [1, 2, 0, 0])

    def test_adopt_copy_semantics(self):
        data = np.arange(6, dtype=np.float64)
        seq = DistributedSequence.adopt(data, release=False)
        data[0] = 99
        assert seq[0] == 0.0

    def test_adopt_release_aliases(self):
        data = np.arange(6, dtype=np.float64)
        seq = DistributedSequence.adopt(data, release=True)
        data[0] = 99
        assert seq[0] == 99.0

    def test_adopt_rejects_2d(self):
        with pytest.raises(DistributionError):
            DistributedSequence.adopt(np.zeros((2, 3)))

    def test_from_global(self):
        seq = DistributedSequence.from_global(np.arange(8))
        np.testing.assert_array_equal(seq.allgather(), np.arange(8))

    def test_copy_is_deep(self):
        seq = DistributedSequence.from_global(np.arange(4))
        dup = seq.copy()
        dup.local_data()[:] = 0
        np.testing.assert_array_equal(seq.local_data(), np.arange(4))

    def test_frozen_rejects_redistribute(self):
        seq = DistributedSequence(8, frozen=True)
        with pytest.raises(DistributionError):
            seq.redistribute(BlockTemplate())


def spmd_sequence(n, body, **kw):
    return spmd_run(n, body, **kw)


class TestSpmdSequence:
    def test_blockwise_partition(self):
        def body(ctx):
            seq = DistributedSequence(10, comm=ctx.comm)
            return seq.local_length()

        assert spmd_sequence(4, body) == [3, 3, 2, 2]

    def test_proportions_partition(self):
        def body(ctx):
            seq = DistributedSequence(
                12, template=Proportions(2, 4, 2, 4), comm=ctx.comm
            )
            return seq.local_length()

        assert spmd_sequence(4, body) == [2, 4, 2, 4]

    def test_from_global_distributes(self):
        def body(ctx):
            seq = DistributedSequence.from_global(
                np.arange(10), comm=ctx.comm
            )
            lo, hi = seq.local_range()
            np.testing.assert_array_equal(seq.local_data(), np.arange(lo, hi))
            return True

        assert all(spmd_sequence(3, body))

    def test_collective_getitem_broadcasts_from_owner(self):
        def body(ctx):
            seq = DistributedSequence.from_global(
                np.arange(10) * 10, comm=ctx.comm
            )
            return seq[7]

        assert spmd_sequence(4, body) == [70, 70, 70, 70]

    def test_collective_setitem(self):
        def body(ctx):
            seq = DistributedSequence(10, comm=ctx.comm)
            seq[9] = 5.5
            return seq[9]

        assert spmd_sequence(3, body) == [5.5, 5.5, 5.5]

    def test_adopt_builds_layout_by_allgather(self):
        def body(ctx):
            local = np.full(ctx.rank + 1, float(ctx.rank))
            seq = DistributedSequence.adopt(local, comm=ctx.comm)
            assert seq.length() == 1 + 2 + 3
            return seq.allgather().tolist()

        expected = [0.0, 1.0, 1.0, 2.0, 2.0, 2.0]
        assert spmd_sequence(3, body) == [expected] * 3

    def test_adopt_rejects_mismatched_local_buffer(self):
        def body(ctx):
            DistributedSequence(
                10,
                comm=ctx.comm,
                _layout=BlockTemplate(2).layout(10),
                _local=np.zeros(1),
            )

        with pytest.raises(Exception):
            spmd_sequence(2, body)

    def test_redistribute_block_to_proportions(self):
        def body(ctx):
            seq = DistributedSequence.from_global(
                np.arange(12, dtype=np.float64), comm=ctx.comm
            )
            seq.redistribute(Proportions(2, 4, 2, 4))
            lo, hi = seq.local_range()
            np.testing.assert_array_equal(
                seq.local_data(), np.arange(lo, hi, dtype=np.float64)
            )
            return seq.local_length()

        assert spmd_sequence(4, body) == [2, 4, 2, 4]

    def test_redistribute_roundtrip_preserves_data(self):
        def body(ctx):
            data = np.arange(37, dtype=np.float64) ** 2
            seq = DistributedSequence.from_global(data, comm=ctx.comm)
            seq.redistribute(Proportions(5, 1, 1, 3))
            seq.redistribute(BlockTemplate())
            np.testing.assert_array_equal(seq.allgather(), data)
            return True

        assert all(spmd_sequence(4, body))

    def test_redistribute_noop_same_layout(self):
        def body(ctx):
            seq = DistributedSequence.from_global(
                np.arange(8), comm=ctx.comm
            )
            before = seq.local_data()
            seq.redistribute(BlockTemplate())
            return seq.local_data() is before

        assert all(spmd_sequence(2, body))

    def test_grow_assigns_to_last_owner(self):
        def body(ctx):
            seq = DistributedSequence.from_global(
                np.arange(8, dtype=np.float64), comm=ctx.comm
            )
            seq.set_length(12)
            return seq.local_length()

        assert spmd_sequence(4, body) == [2, 2, 2, 6]

    def test_shrink_discards_above(self):
        def body(ctx):
            seq = DistributedSequence.from_global(
                np.arange(8, dtype=np.float64), comm=ctx.comm
            )
            seq.set_length(3)
            return seq.allgather().tolist()

        assert spmd_sequence(4, body) == [[0.0, 1.0, 2.0]] * 4

    def test_explicit_template(self):
        def body(ctx):
            seq = DistributedSequence(
                10, template=ExplicitTemplate([0, 10]), comm=ctx.comm
            )
            return seq.local_length()

        assert spmd_sequence(2, body) == [0, 10]


class TestSequenceProperties:
    @given(
        length=st.integers(0, 120),
        nranks=st.integers(1, 6),
        weights=st.lists(st.integers(0, 9), min_size=1, max_size=6).filter(
            lambda w: any(w)
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_redistribute_preserves_content(self, length, nranks, weights):
        weights = (weights * nranks)[:nranks]
        if not any(weights):
            weights[0] = 1

        def body(ctx):
            data = np.arange(length, dtype=np.float64)
            seq = DistributedSequence.from_global(data, comm=ctx.comm)
            seq.redistribute(Proportions(*weights))
            np.testing.assert_array_equal(seq.allgather(), data)
            return True

        assert all(spmd_run(nranks, body))

    @given(
        length=st.integers(0, 60),
        new_length=st.integers(0, 60),
        nranks=st.integers(1, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_resize_preserves_prefix(self, length, new_length, nranks):
        def body(ctx):
            data = np.arange(length, dtype=np.float64)
            seq = DistributedSequence.from_global(data, comm=ctx.comm)
            seq.set_length(new_length)
            result = seq.allgather()
            keep = min(length, new_length)
            np.testing.assert_array_equal(result[:keep], data[:keep])
            np.testing.assert_array_equal(
                result[keep:], np.zeros(max(0, new_length - keep))
            )
            return True

        assert all(spmd_run(nranks, body))
