"""Backend parametrization for the distributed-sequence suites.

``test_sequence`` and ``test_slices`` drive real SPMD groups, so they
run once per RTS backend (thread and process) via ``PARDIS_RTS``;
``test_template``/``test_schedule`` are pure layout math and keep a
single run.
"""

import os

import pytest

from repro.rts import process_backend_supported
from repro.rts.backends import ENV_VAR

PROCESS_MODULES = {"test_sequence", "test_slices"}


def pytest_generate_tests(metafunc):
    if "rts_backend" not in metafunc.fixturenames:
        return
    module = metafunc.module.__name__.rpartition(".")[2]
    if module in PROCESS_MODULES:
        metafunc.parametrize(
            "rts_backend",
            ["thread", "process"],
            indirect=True,
            scope="module",
        )


@pytest.fixture(scope="module")
def rts_backend(request):
    backend = getattr(request, "param", None)
    if backend is None:
        yield os.environ.get(ENV_VAR) or "thread"
        return
    if backend == "process" and not process_backend_supported():
        pytest.skip("process RTS backend needs the fork start method")
    old = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = backend
    try:
        yield backend
    finally:
        if old is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = old


@pytest.fixture(autouse=True)
def _rts_backend_env(rts_backend):
    yield
