"""Unit tests for distribution templates and layouts."""

import pytest

from repro.dist import BlockTemplate, ExplicitTemplate, Layout, Proportions
from repro.dist.template import DistributionError


class TestLayout:
    def test_bounds_must_tile(self):
        with pytest.raises(DistributionError):
            Layout(((0, 4), (5, 8)))

    def test_bounds_must_be_ordered(self):
        with pytest.raises(DistributionError):
            Layout(((0, 4), (4, 2)))

    def test_empty_layout(self):
        layout = Layout(())
        assert layout.length == 0
        assert layout.nranks == 0

    def test_length_and_local_lengths(self):
        layout = Layout(((0, 3), (3, 3), (3, 10)))
        assert layout.length == 10
        assert layout.local_lengths() == (3, 0, 7)
        assert layout.local_range(2) == (3, 10)

    def test_owner_of_skips_empty_ranges(self):
        layout = Layout(((0, 3), (3, 3), (3, 10)))
        assert layout.owner_of(0) == 0
        assert layout.owner_of(2) == 0
        assert layout.owner_of(3) == 2
        assert layout.owner_of(9) == 2

    def test_owner_of_out_of_range(self):
        layout = Layout(((0, 5),))
        with pytest.raises(IndexError):
            layout.owner_of(5)
        with pytest.raises(IndexError):
            layout.owner_of(-1)

    def test_from_local_lengths(self):
        layout = Layout.from_local_lengths([2, 0, 5])
        assert layout.bounds == ((0, 2), (2, 2), (2, 7))

    def test_from_local_lengths_rejects_negative(self):
        with pytest.raises(DistributionError):
            Layout.from_local_lengths([2, -1])


class TestResize:
    def test_shrink_discards_top(self):
        layout = Layout(((0, 4), (4, 8), (8, 12)))
        shrunk = layout.resized(6)
        assert shrunk.bounds == ((0, 4), (4, 6), (6, 6))

    def test_shrink_to_zero(self):
        layout = Layout(((0, 4), (4, 8)))
        assert layout.resized(0).local_lengths() == (0, 0)

    def test_grow_extends_last_owner(self):
        layout = Layout(((0, 4), (4, 8), (8, 12)))
        grown = layout.resized(20)
        assert grown.bounds == ((0, 4), (4, 8), (8, 20))

    def test_grow_skips_trailing_empty_ranks(self):
        # Rank 1 owned the last elements; rank 2 is empty and stays so.
        layout = Layout(((0, 4), (4, 8), (8, 8)))
        grown = layout.resized(10)
        assert grown.bounds == ((0, 4), (4, 10), (10, 10))

    def test_grow_empty_sequence_goes_to_last_rank(self):
        layout = Layout(((0, 0), (0, 0)))
        grown = layout.resized(5)
        assert grown.bounds == ((0, 0), (0, 5))

    def test_resize_noop(self):
        layout = Layout(((0, 4), (4, 8)))
        assert layout.resized(8) is layout

    def test_negative_length_rejected(self):
        with pytest.raises(DistributionError):
            Layout(((0, 4),)).resized(-1)


class TestBlockTemplate:
    def test_even_split(self):
        layout = BlockTemplate(4).layout(8)
        assert layout.local_lengths() == (2, 2, 2, 2)

    def test_remainder_goes_to_low_ranks(self):
        layout = BlockTemplate(4).layout(10)
        assert layout.local_lengths() == (3, 3, 2, 2)

    def test_more_ranks_than_elements(self):
        layout = BlockTemplate(4).layout(2)
        assert layout.local_lengths() == (1, 1, 0, 0)

    def test_zero_length(self):
        layout = BlockTemplate(3).layout(0)
        assert layout.local_lengths() == (0, 0, 0)

    def test_unbound_template_needs_nranks(self):
        template = BlockTemplate()
        with pytest.raises(DistributionError):
            template.layout(10)
        assert template.layout(10, nranks=2).local_lengths() == (5, 5)

    def test_bound_template_rejects_other_nranks(self):
        with pytest.raises(DistributionError):
            BlockTemplate(4).layout(10, nranks=3)

    def test_rejects_nonpositive_ranks(self):
        with pytest.raises(DistributionError):
            BlockTemplate(0)
        with pytest.raises(DistributionError):
            BlockTemplate().layout(10, nranks=0)

    def test_equality_and_hash(self):
        assert BlockTemplate(4) == BlockTemplate(4)
        assert BlockTemplate(4) != BlockTemplate(2)
        assert hash(BlockTemplate(4)) == hash(BlockTemplate(4))


class TestProportions:
    def test_paper_example(self):
        # Proportions(2,4,2,4) over 12 elements: 2:4:2:4.
        layout = Proportions(2, 4, 2, 4).layout(12)
        assert layout.local_lengths() == (2, 4, 2, 4)

    def test_scales_with_length(self):
        layout = Proportions(2, 4, 2, 4).layout(24)
        assert layout.local_lengths() == (4, 8, 4, 8)

    def test_sum_is_exact_under_rounding(self):
        layout = Proportions(1, 1, 1).layout(10)
        assert sum(layout.local_lengths()) == 10
        assert layout.local_lengths() == (4, 3, 3)

    def test_zero_weight_gets_nothing(self):
        layout = Proportions(1, 0, 1).layout(9)
        assert layout.local_lengths()[1] == 0
        assert sum(layout.local_lengths()) == 9

    def test_rejects_bad_weights(self):
        with pytest.raises(DistributionError):
            Proportions()
        with pytest.raises(DistributionError):
            Proportions(-1, 2)
        with pytest.raises(DistributionError):
            Proportions(0, 0)
        with pytest.raises(DistributionError):
            Proportions(float("inf"), 1)

    def test_nranks_fixed_by_weights(self):
        template = Proportions(1, 2)
        assert template.nranks == 2
        with pytest.raises(DistributionError):
            template.layout(10, nranks=3)

    def test_equality(self):
        assert Proportions(1, 2) == Proportions(1, 2)
        assert Proportions(1, 2) != Proportions(2, 1)


class TestExplicitTemplate:
    def test_exact_lengths(self):
        template = ExplicitTemplate([3, 0, 7])
        layout = template.layout(10)
        assert layout.local_lengths() == (3, 0, 7)

    def test_rejects_other_lengths(self):
        with pytest.raises(DistributionError):
            ExplicitTemplate([3, 7]).layout(11)

    def test_equality(self):
        assert ExplicitTemplate([1, 2]) == ExplicitTemplate([1, 2])
        assert ExplicitTemplate([1, 2]) != ExplicitTemplate([2, 1])
