"""Every example script must run clean — they are part of the API
contract (each asserts its own correctness before printing OK)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert "quickstart.py" in SCRIPTS
    assert len(SCRIPTS) >= 3


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert "OK" in result.stdout or "note:" in result.stdout
