"""Tests for the benchmark table generators and the two CLIs."""

import subprocess
import sys

import pytest

from repro.bench import (
    TABLE1_PAPER,
    TABLE2_PAPER,
    concurrent_clients,
    figure4,
    format_figure4,
    format_table,
    table1,
    table2,
    uneven_split,
)
from repro.bench.tables import (
    TableResult,
    ablation_gather,
    ablation_header,
    ablation_scheduler,
)


class TestTableGenerators:
    def test_table1_has_all_paper_cells(self):
        result = table1()
        assert len(result.rows) == len(TABLE1_PAPER)
        # Every row carries its paper column alongside.
        assert "paper" in result.headers

    def test_table2_has_all_paper_cells(self):
        result = table2()
        assert len(result.rows) == len(TABLE2_PAPER)

    def test_figure4_covers_seven_decades(self):
        result = figure4()
        assert [row[0] for row in result.rows] == [
            f"1e{e}" for e in range(1, 8)
        ]

    def test_uneven_has_reference_row(self):
        result = uneven_split()
        assert result.rows[0][0] == "even (block)"
        assert result.rows[0][2] == "1.00x"

    def test_ablations_render(self):
        for generator in (
            ablation_scheduler,
            ablation_gather,
            ablation_header,
            concurrent_clients,
        ):
            result = generator()
            assert result.rows and result.title

    def test_format_table_alignment(self):
        result = TableResult(
            title="T",
            headers=["a", "long-header"],
            rows=[["1", "2"], ["333", "4"]],
            notes=["a note"],
        )
        text = format_table(result)
        lines = text.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[2:5]}
        assert len(widths) == 1  # header, rule and rows align
        assert "note: a note" in text

    def test_format_figure4_has_ascii_plot(self):
        text = format_figure4(figure4())
        assert "|" in text and ("m" in text or "*" in text)


class TestCli:
    def run_cli(self, module, *args):
        return subprocess.run(
            [sys.executable, "-m", module, *args],
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_bench_cli_single_table(self):
        result = self.run_cli("repro.bench", "table1")
        assert result.returncode == 0
        assert "Table 1" in result.stdout

    def test_bench_cli_rejects_unknown(self):
        result = self.run_cli("repro.bench", "table99")
        assert result.returncode != 0

    def test_bench_cli_all(self):
        result = self.run_cli("repro.bench")
        assert result.returncode == 0
        for marker in ("Table 1", "Table 2", "Figure 4", "Uneven",
                       "Concurrent", "Ablation"):
            assert marker in result.stdout

    def test_idl_cli_compiles_to_stdout(self, tmp_path):
        source = tmp_path / "t.idl"
        source.write_text(
            "interface hello { void ping(); };", encoding="utf-8"
        )
        result = self.run_cli("repro.idl", str(source))
        assert result.returncode == 0
        assert "class hello(_ClientProxy):" in result.stdout

    def test_idl_cli_writes_output_file(self, tmp_path):
        source = tmp_path / "t.idl"
        source.write_text(
            "interface hello { void ping(); };", encoding="utf-8"
        )
        out = tmp_path / "out.py"
        result = self.run_cli("repro.idl", str(source), "-o", str(out))
        assert result.returncode == 0
        compile(out.read_text(encoding="utf-8"), str(out), "exec")

    def test_idl_cli_reports_errors(self, tmp_path):
        source = tmp_path / "bad.idl"
        source.write_text("interface {", encoding="utf-8")
        result = self.run_cli("repro.idl", str(source))
        assert result.returncode == 1
        assert "bad.idl" in result.stderr
