"""Shared sanitizer-test plumbing.

These tests *provoke* findings on purpose, so the process-wide
registry is drained around every test — otherwise a provoked finding
would leak into the suite-level zero-finding assertion the CI ``san``
job makes.  ``PARDIS_SAN_LOG`` is unset for the same reason: the CI
job treats any line in that file as a failure.
"""

import gc

import pytest

import repro.san as san


@pytest.fixture(autouse=True)
def clean_san_registry(monkeypatch):
    monkeypatch.delenv("PARDIS_SAN_LOG", raising=False)
    gc.collect()  # flush straggling finalizers from a previous test
    san.clear_findings()
    yield
    gc.collect()
    san.clear_findings()
