"""Buffer-view escape detection: a memoryview that outlives its
pooled receive buffer's recycle is reported and the buffer is
quarantined; clean recycles are poisoned so stale reads are loud."""

import pytest

import repro.san as san
from repro.san.buffers import POISON_BYTE, BufferGuard


def _buffer_findings():
    return [f for f in san.findings() if f.detector == "buffer"]


def test_escaped_view_is_reported_and_refused():
    guard = BufferGuard()
    buf = bytearray(64)
    view = memoryview(buf)
    assert guard.check_and_poison(buf) is False
    [finding] = _buffer_findings()
    assert "memoryview" in finding.message
    assert "64 bytes" in finding.message
    assert finding.extra["epoch"] == 1
    view.release()


def test_clean_buffer_is_poisoned_and_accepted():
    guard = BufferGuard()
    buf = bytearray(b"sensitive payload bytes")
    assert guard.check_and_poison(buf) is True
    assert bytes(buf) == bytes([POISON_BYTE]) * len(buf)
    assert _buffer_findings() == []


def test_epoch_advances_per_recycle():
    guard = BufferGuard()
    for _ in range(3):
        assert guard.check_and_poison(bytearray(8)) is True
    view = memoryview(buf := bytearray(8))
    assert guard.check_and_poison(buf) is False
    [finding] = _buffer_findings()
    assert finding.extra["epoch"] == 4
    view.release()


def test_conn_buffers_quarantine_escaped_buffer(monkeypatch):
    """The socket fabric's pool refuses to re-pool a buffer whose
    view escaped, so later frames can never alias live payloads."""
    monkeypatch.setenv("PARDIS_SAN", "1")
    from repro.orb.socketnet import _ConnBuffers

    buffers = _ConnBuffers()
    buf, pooled = buffers.take(100)
    assert pooled
    view = memoryview(buf)
    buffers.give(buf)
    assert buf not in buffers._free, "escaped buffer must be quarantined"
    assert len(_buffer_findings()) == 1
    view.release()

    # A clean buffer still recycles, poisoned.
    buf2, _ = buffers.take(100)
    buffers.give(buf2)
    assert any(b is buf2 for b in buffers._free)
    assert bytes(buf2) == bytes([POISON_BYTE]) * len(buf2)


def test_conn_buffers_unguarded_when_disabled(monkeypatch):
    monkeypatch.delenv("PARDIS_SAN", raising=False)
    from repro.orb.socketnet import _ConnBuffers

    buffers = _ConnBuffers()
    buf, _ = buffers.take(100)
    view = memoryview(buf)
    buffers.give(buf)  # no guard: no BufferError probe, no finding
    assert any(b is buf for b in buffers._free)
    assert _buffer_findings() == []
    view.release()


def test_counters_track_poisons():
    before = san.stats()["counters"].get("buffers_poisoned", 0)
    guard = BufferGuard()
    guard.check_and_poison(bytearray(4))
    guard.check_and_poison(bytearray(4))
    assert san.stats()["counters"]["buffers_poisoned"] == before + 2
