"""Future-lifecycle tracking: leaks are reported at finalization
with the creating call site."""

import gc
import time

import pytest

import repro.san as san
from repro import ORB, compile_idl

WORK_IDL = """
interface job {
    long ok(in long x);
    long fail(in long x);
};
"""


@pytest.fixture(scope="module")
def idl():
    return compile_idl(WORK_IDL, module_name="san_job_idl")


def _servant_factory(idl):
    class Job(idl.job_skel):
        def ok(self, x):
            return x + 1

        def fail(self, x):
            raise RuntimeError("boom")

    return lambda ctx: Job()


@pytest.fixture()
def orb(idl):
    with ORB("san-fut", sanitize=True, timeout=10.0) as orb:
        orb.serve("job", _servant_factory(idl))
        yield orb


@pytest.fixture()
def proxy(orb, idl):
    runtime = orb.client_runtime(label="san-fut-client")
    try:
        yield idl.job._bind("job", runtime)
    finally:
        runtime.close()


def _future_findings():
    return [f for f in san.findings() if f.detector == "future"]


def _await_finding(kind, deadline=10.0):
    """Finalization races with the engine thread dropping its own
    reference to the future, so poll instead of asserting after one
    ``gc.collect()``."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        gc.collect()
        found = [f for f in _future_findings() if f.extra["kind"] == kind]
        if found:
            return found
        time.sleep(0.01)
    raise AssertionError(f"no {kind!r} finding within {deadline}s")


def _settle():
    """Give any straggling finalizers a chance to fire before a
    clean-path assertion."""
    for _ in range(10):
        gc.collect()
        time.sleep(0.01)


def test_never_consumed_future_is_reported(proxy):
    future = proxy.ok_nb(41)
    while not future.ready():
        time.sleep(0.001)
    del future
    [finding] = _await_finding("never-consumed")
    assert finding.extra["label"] == "job.ok"
    assert "never being consumed" in finding.message or "consumed" in finding.message
    assert "test_futures.py" in finding.site


def test_unretrieved_exception_is_reported(proxy):
    future = proxy.fail_nb(1)
    future.wait(timeout=30.0)  # observed completion, not the error
    del future
    [finding] = _await_finding("exception-leak")
    assert "never-retrieved exception" in finding.message
    assert "boom" in finding.message
    assert "test_futures.py" in finding.site


def test_consumed_future_is_clean(proxy):
    future = proxy.ok_nb(1)
    assert future.value(timeout=30.0) == 2
    del future
    _settle()
    assert _future_findings() == []


def test_retrieved_exception_is_clean(proxy):
    future = proxy.fail_nb(1)
    with pytest.raises(Exception):
        future.value(timeout=30.0)
    del future
    _settle()
    assert _future_findings() == []


def test_exception_accessor_counts_as_retrieval(proxy):
    future = proxy.fail_nb(1)
    assert future.exception(timeout=30.0) is not None
    del future
    _settle()
    assert _future_findings() == []


def test_then_chain_consumes_the_parent(proxy):
    chained = proxy.ok_nb(1).then(lambda v: v * 10)
    assert chained.value(timeout=30.0) == 20
    del chained
    _settle()
    assert _future_findings() == []


def test_untracked_futures_cost_nothing_when_disabled(idl):
    with ORB("san-off", sanitize=False, timeout=10.0) as orb:
        orb.serve("job", _servant_factory(idl))
        runtime = orb.client_runtime(label="san-off-client")
        try:
            proxy = idl.job._bind("job", runtime)
            future = proxy.ok_nb(1)
            assert future._san_state is None
            while not future.ready():
                time.sleep(0.001)
            del future
            _settle()
        finally:
            runtime.close()
    assert _future_findings() == []
