"""The collective-alignment checker: divergence aborts with a
located diagnostic instead of hanging."""

import pytest

import repro.san as san
from repro import ORB, compile_idl
from repro.san import SanitizerError

TOGGLE_IDL = """
interface toggle {
    long ping();
    long pong();
};
"""


@pytest.fixture(scope="module")
def idl():
    return compile_idl(TOGGLE_IDL, module_name="san_toggle_idl")


def _servant_factory(idl):
    class Toggle(idl.toggle_skel):
        def ping(self):
            return 1

        def pong(self):
            return 2

    return lambda ctx: Toggle()


def test_divergent_operations_abort_on_every_rank(idl):
    """Rank 0 issues ping where rank 1 issues pong: both ranks get a
    SanitizerError naming both operations and both call sites."""
    with ORB("san-div", sanitize=True, timeout=10.0) as orb:
        orb.serve("toggle", _servant_factory(idl), nthreads=1)

        def run(c):
            proxy = idl.toggle._spmd_bind("toggle", c.runtime)
            try:
                if c.rank == 0:
                    proxy.ping()
                else:
                    proxy.pong()
            except SanitizerError as exc:
                return str(exc)
            return "no abort"

        r0, r1 = orb.run_spmd_client(2, run, timeout=120.0)
    for message in (r0, r1):
        assert "toggle.ping" in message
        assert "toggle.pong" in message
        assert "collective #0 divergence" in message
        assert "test_collective.py" in message  # the call sites
    findings = [
        f for f in san.findings() if f.detector == "collective"
    ]
    assert findings, "divergence must land in the registry"
    assert findings[0].extra["index"] == 0


def test_skipped_collective_aborts_instead_of_hanging(idl, monkeypatch):
    """Rank 1 skips the collective entirely: rank 0 reports the
    missing rank within PARDIS_SAN_TIMEOUT instead of deadlocking."""
    monkeypatch.setenv("PARDIS_SAN_TIMEOUT", "1.0")
    with ORB("san-skip", sanitize=True, timeout=10.0) as orb:
        orb.serve("toggle", _servant_factory(idl), nthreads=1)

        def run(c):
            proxy = idl.toggle._spmd_bind("toggle", c.runtime)
            if c.rank != 0:
                return "skipped"  # never issues the collective
            try:
                proxy.ping()
            except SanitizerError as exc:
                return str(exc)
            return "no abort"

        r0, r1 = orb.run_spmd_client(2, run, timeout=120.0)
    assert r1 == "skipped"
    assert "never announced" in r0
    assert "rank(s) 1" in r0
    assert "toggle.ping" in r0


def test_aligned_collectives_run_clean(idl):
    with ORB("san-ok", sanitize=True, timeout=10.0) as orb:
        orb.serve("toggle", _servant_factory(idl), nthreads=1)

        def run(c):
            proxy = idl.toggle._spmd_bind("toggle", c.runtime)
            return [proxy.ping() for _ in range(5)]

        r0, r1 = orb.run_spmd_client(2, run, timeout=120.0)
    assert r0 == r1 == [1] * 5
    assert [f for f in san.findings() if f.detector == "collective"] == []
    # The checker actually ran: 5 invocations + nothing else on this
    # registry snapshot (per-rank counters both bump the same tally).
    assert san.stats()["counters"]["collective_checks"] >= 10


def test_serial_bind_is_not_checked(idl):
    """Per-thread (_bind) invocations are not collective: each rank
    may call different operations freely."""
    with ORB("san-serial", sanitize=True, timeout=10.0) as orb:
        orb.serve("toggle", _servant_factory(idl), nthreads=1)

        def run(c):
            proxy = idl.toggle._bind("toggle", c.runtime)
            return proxy.ping() if c.rank == 0 else proxy.pong()

        r0, r1 = orb.run_spmd_client(2, run, timeout=120.0)
    assert (r0, r1) == (1, 2)
    assert san.findings() == []
