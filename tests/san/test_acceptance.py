"""The ISSUE's end-to-end acceptance criterion.

A divergent collective hidden one call deep must be caught twice
over: statically, PD210 flags the rank-guarded helper call; and when
the developer suppresses the lint and runs anyway under
``PARDIS_SAN=1``, the runtime sanitizer aborts with a diagnostic
naming the divergent operation and the call site — instead of every
rank hanging in the engine (§2's failure mode)."""

import pytest

import repro.san as san
from repro import ORB, compile_idl
from repro.lint import lint_python_source
from repro.san import SanitizerError

COUNTER_IDL = """
interface counter {
    long bump();
};
"""

# The buggy program under test.  ``helper`` hides the collective one
# call deep; ``main`` only calls it on rank 0.
PROGRAM = '''\
def helper(proxy):
    return proxy.invoke_all("bump", ())


def main(proxy, rank):
    if rank == 0:
        return helper(proxy)
    return None
'''

PROGRAM_SUPPRESSED = PROGRAM.replace(
    "        return helper(proxy)",
    "        return helper(proxy)  # pardis-lint: disable=PD210",
)

PROG_FILENAME = "san_acceptance_prog.py"


@pytest.fixture(scope="module")
def idl():
    return compile_idl(COUNTER_IDL, module_name="san_counter_idl")


def test_static_half_pd210_flags_the_hidden_divergence():
    diagnostics = lint_python_source(PROGRAM, PROG_FILENAME)
    pd210 = [d for d in diagnostics if d.rule == "PD210"]
    assert pd210, "the hidden divergent collective must be flagged"
    assert pd210[0].line == 7  # the rank-guarded helper call
    assert "helper" in pd210[0].message


def test_suppression_silences_the_static_half():
    assert lint_python_source(PROGRAM_SUPPRESSED, PROG_FILENAME) == []


def test_dynamic_half_aborts_naming_operation_and_site(idl, monkeypatch):
    """Run the lint-suppressed program for real: the sanitizer must
    abort rank 0 with the operation and program call site, not hang."""
    monkeypatch.setenv("PARDIS_SAN_TIMEOUT", "1.5")

    namespace: dict = {}
    exec(compile(PROGRAM_SUPPRESSED, PROG_FILENAME, "exec"), namespace)
    buggy_main = namespace["main"]

    class Counter(idl.counter_skel):
        def __init__(self):
            self.count = 0

        def bump(self):
            self.count += 1
            return self.count

    with ORB("san-accept", sanitize=True, timeout=10.0) as orb:
        orb.serve("counter", lambda ctx: Counter(), nthreads=1)

        def run(c):
            proxy = idl.counter._spmd_bind("counter", c.runtime)
            try:
                return ("ok", buggy_main(proxy, c.rank))
            except SanitizerError as exc:
                return ("abort", str(exc))

        r0, r1 = orb.run_spmd_client(2, run, timeout=120.0)

    assert r1 == ("ok", None)  # rank 1 took the empty path
    status, message = r0
    assert status == "abort", "rank 0 must abort, not hang"
    assert "counter.bump" in message  # the divergent operation
    assert PROG_FILENAME in message  # the user-code call site
    assert "never announced" in message
    assert "rank(s) 1" in message

    findings = [f for f in san.findings() if f.detector == "collective"]
    assert findings and findings[0].extra["operation"] == "counter.bump"
