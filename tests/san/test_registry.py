"""The sanitizer registry surface: env gating, the findings log,
and the ``orb.stats()["san"]`` snapshot."""

import json

import pytest

import repro.san as san
from repro import ORB
from repro.san import Finding


def _finding(n=0):
    return Finding(
        detector="test",
        message=f"synthetic finding {n}",
        site="prog.py:12",
        extra={"n": n},
    )


@pytest.mark.parametrize("value", ["1", "true", "YES", "On"])
def test_enabled_truthy_values(monkeypatch, value):
    monkeypatch.setenv("PARDIS_SAN", value)
    assert san.enabled()


@pytest.mark.parametrize("value", ["0", "false", "", "off"])
def test_enabled_falsy_values(monkeypatch, value):
    monkeypatch.setenv("PARDIS_SAN", value)
    assert not san.enabled()


def test_timeout_knob(monkeypatch):
    monkeypatch.setenv("PARDIS_SAN_TIMEOUT", "3.5")
    assert san.timeout() == 3.5
    monkeypatch.delenv("PARDIS_SAN_TIMEOUT")
    assert san.timeout() == 20.0


def test_record_appends_to_log_file(monkeypatch, tmp_path):
    log = tmp_path / "san.jsonl"
    monkeypatch.setenv("PARDIS_SAN_LOG", str(log))
    san.record(_finding(1))
    san.record(_finding(2))
    lines = log.read_text().splitlines()
    assert len(lines) == 2
    entry = json.loads(lines[0])
    assert entry["detector"] == "test"
    assert entry["site"] == "prog.py:12"
    assert entry["extra"] == {"n": 1}


def test_clear_findings_drains():
    san.record(_finding())
    drained = san.clear_findings()
    assert len(drained) == 1
    assert san.findings() == []


def test_render_names_detector_and_site():
    text = _finding().render()
    assert "test" in text
    assert "prog.py:12" in text
    assert "synthetic finding 0" in text


def test_orb_stats_exposes_san_snapshot():
    san.record(_finding())
    with ORB("san-stats", sanitize=True, timeout=10.0) as orb:
        snapshot = orb.stats()["san"]
    assert set(snapshot) >= {"enabled", "counters", "findings"}
    assert any(
        f["message"] == "synthetic finding 0" for f in snapshot["findings"]
    )


def test_orb_sanitize_flag_overrides_env(monkeypatch):
    monkeypatch.delenv("PARDIS_SAN", raising=False)
    with ORB("san-flag", sanitize=True, timeout=10.0) as orb:
        assert orb.sanitize
    monkeypatch.setenv("PARDIS_SAN", "1")
    with ORB("san-noflag", sanitize=False, timeout=10.0) as orb:
        assert not orb.sanitize
