"""Error-path integration tests: exceptions crossing the wire,
misuse, and failure injection."""

import numpy as np
import pytest

from repro.orb.operation import RemoteError

TRANSFERS = ["centralized", "multiport"]


def serve(orb, servant_class, nthreads=2, **kw):
    return orb.serve("example", lambda ctx: servant_class(), nthreads, **kw)


@pytest.mark.parametrize("transfer", TRANSFERS)
class TestUserExceptions:
    def test_declared_exception_reaches_client_as_class(
        self, orb, idl, servant_class, transfer
    ):
        serve(orb, servant_class)

        def client(c):
            diff = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            with pytest.raises(idl.bad_step) as excinfo:
                diff.validate(-7)
            return excinfo.value.step, excinfo.value.reason

        results = orb.run_spmd_client(2, client)
        assert results == [(-7, "negative step")] * 2

    def test_ok_after_exception(self, orb, idl, servant_class, transfer):
        """The server loop survives an exception and keeps serving."""
        serve(orb, servant_class)

        def client(c):
            diff = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            with pytest.raises(idl.bad_step):
                diff.validate(-1)
            diff.validate(1)  # fine
            return diff.scaled(2, 2)

        assert orb.run_spmd_client(2, client) == [(4, 3)] * 2


class TestSystemExceptions:
    def test_servant_crash_becomes_remote_error(self, orb, idl, servant_class):
        class Broken(servant_class):
            def checksum(self, data):
                raise ZeroDivisionError("servant bug")

        orb.serve("example", lambda ctx: Broken(), 2)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            seq = idl.darray.from_global(np.ones(4), comm=c.comm)
            with pytest.raises(RemoteError) as excinfo:
                diff.checksum(seq)
            return "servant bug" in str(excinfo.value)

        assert all(orb.run_spmd_client(2, client))

    def test_undeclared_user_exception_is_system_error(
        self, orb, idl, servant_class
    ):
        class Sneaky(servant_class):
            def scaled(self, factor, counter):
                raise idl.bad_step(step=1, reason="undeclared here")

        orb.serve("example", lambda ctx: Sneaky(), 1)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            with pytest.raises(RemoteError, match="undeclared"):
                diff.scaled(1, 1)
            return True

        assert all(orb.run_spmd_client(1, client))

    def test_unimplemented_operation(self, orb, idl):
        class Partial(idl.diff_object_skel):
            pass  # implements nothing

        orb.serve("example", lambda ctx: Partial(), 1)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            with pytest.raises(RemoteError) as excinfo:
                diff.scaled(1, 1)
            return excinfo.value.category

        assert orb.run_spmd_client(1, client) == ["NO_IMPLEMENT"]

    def test_wrong_produced_arity(self, orb, idl, servant_class):
        class Wrong(servant_class):
            def scaled(self, factor, counter):
                return 42  # must produce (return, counter)

        orb.serve("example", lambda ctx: Wrong(), 1)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            with pytest.raises(RemoteError, match="tuple of 2"):
                diff.scaled(1, 1)
            return True

        assert all(orb.run_spmd_client(1, client))

    def test_diverging_spmd_servant_detected(self, orb, idl, servant_class):
        class Diverging(servant_class):
            def checksum(self, data):
                if self.rank == 1:
                    raise RuntimeError("only rank 1 fails")
                return super().checksum(data)

        orb.serve("example", lambda ctx: Diverging(), 3)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            seq = idl.darray.from_global(np.ones(6), comm=c.comm)
            with pytest.raises(RemoteError):
                diff.checksum(seq)
            return True

        assert all(orb.run_spmd_client(2, client))


class TestClientMisuse:
    def test_wrong_argument_count(self, orb, idl, servant_class):
        serve(orb, servant_class)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            with pytest.raises(TypeError):
                diff._invoke("scaled", (1, 2, 3))
            return True

        assert all(orb.run_spmd_client(1, client))

    def test_plain_value_for_distributed_param(self, orb, idl, servant_class):
        serve(orb, servant_class)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            with pytest.raises(TypeError, match="DistributedSequence"):
                diff.checksum([1.0, 2.0])
            return True

        assert all(orb.run_spmd_client(1, client))

    def test_wrong_dtype_rejected(self, orb, idl, servant_class):
        serve(orb, servant_class)

        def client(c):
            from repro.cdr.typecodes import MarshalError
            from repro.dist import DistributedSequence

            diff = idl.diff_object._spmd_bind("example", c.runtime)
            seq = DistributedSequence(4, dtype=np.int32)
            with pytest.raises(MarshalError, match="dtype"):
                diff.checksum(seq)
            return True

        assert all(orb.run_spmd_client(1, client))

    def test_unknown_operation_via_invoke(self, orb, idl, servant_class):
        serve(orb, servant_class)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            with pytest.raises(RemoteError, match="no operation"):
                diff._invoke("nonexistent", ())
            return True

        assert all(orb.run_spmd_client(1, client))

    def test_unknown_transfer_method(self, orb, idl, servant_class):
        serve(orb, servant_class)

        def client(c):
            with pytest.raises(ValueError, match="unknown transfer"):
                idl.diff_object._spmd_bind(
                    "example", c.runtime, transfer="telepathy"
                )
            return True

        assert all(orb.run_spmd_client(1, client))

    def test_unknown_object_name(self, orb, idl, servant_class):
        def client(c):
            from repro.orb.naming import NamingError

            with pytest.raises(NamingError):
                idl.diff_object._bind("ghost", c.runtime)
            return True

        assert all(orb.run_spmd_client(1, client))

    def test_operation_on_wire_unknown_to_server(self, orb, idl):
        """A stale proxy invoking an operation the server's skeleton
        does not know yields BAD_OPERATION, not a hang."""
        from repro import compile_idl

        v2 = compile_idl(
            """
            typedef dsequence<double> darray;
            interface diff_object {
                void diffusion(in long t, inout darray d);
                void brand_new_op();
            };
            """
        )

        class V1(idl.diff_object_skel):
            def diffusion(self, t, d):
                pass

        orb.serve("example", lambda ctx: V1(), 1)

        def client(c):
            proxy = v2.diff_object._bind("example", c.runtime)
            with pytest.raises(RemoteError) as excinfo:
                proxy.brand_new_op()
            return excinfo.value.category

        assert orb.run_spmd_client(1, client) == ["BAD_OPERATION"]
