"""Property-based end-to-end test: element-exact delivery for
arbitrary client distributions, lengths and geometries, both methods.

This is the functional-plane guarantee DESIGN.md promises: the
transfer schedules executed here are the same ones the simulator
times, so their correctness underwrites the benchmark numbers.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ORB, compile_idl
from repro.dist import Proportions

IDL = """
typedef dsequence<double> darray;
interface echo_object {
    void negate(inout darray data);
};
"""


@pytest.fixture(scope="module")
def stack():
    idl = compile_idl(IDL, module_name="property_idl")

    class Impl(idl.echo_object_skel):
        def negate(self, data):
            data.local_data()[:] *= -1.0

    orb = ORB(timeout=30.0)
    orb.serve("echo-c", lambda ctx: Impl(), 3)
    orb.serve("echo-m", lambda ctx: Impl(), 5)
    yield orb, idl
    orb.shutdown()


@given(
    transfer=st.sampled_from(["centralized", "multiport"]),
    server=st.sampled_from(["echo-c", "echo-m"]),
    nclient=st.integers(1, 4),
    length=st.integers(0, 300),
    weights=st.lists(st.integers(0, 9), min_size=4, max_size=4),
)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_element_exact_delivery(
    stack, transfer, server, nclient, length, weights
):
    orb, idl = stack
    weights = weights[:nclient]
    if not any(weights):
        weights[0] = 1

    def client(c):
        proxy = idl.echo_object._spmd_bind(
            server, c.runtime, transfer=transfer
        )
        data = np.arange(length, dtype=np.float64) + 1.0
        seq = idl.darray.from_global(data, comm=c.comm)
        seq.redistribute(Proportions(*weights))
        proxy.negate(seq)
        np.testing.assert_array_equal(seq.allgather(), -data)
        return True

    assert all(orb.run_spmd_client(nclient, client))
