"""Lifecycle edge cases: stale references, shutdown during use."""

import pytest

from repro.orb.transport import TransportError


class TestStaleReferences:
    def test_invoking_a_shut_down_object_fails_cleanly(
        self, orb, idl, servant_class
    ):
        group = orb.serve("gone", lambda ctx: servant_class(), 2)

        def client(c):
            proxy = idl.diff_object._spmd_bind("gone", c.runtime)
            assert proxy.scaled(2, 1) == (2, 2)
            return proxy

        # Bind + one invocation while alive.
        orb.run_spmd_client(1, client)
        group.shutdown()

        def stale_client(c):
            from repro.orb.proxy import ClientProxy

            # Re-create a proxy from the stale reference directly.
            from repro.orb.proxy import BindMode

            proxy = idl.diff_object(
                c.runtime, group.reference, BindMode.SERIAL, "centralized"
            )
            with pytest.raises(TransportError, match="no port"):
                proxy.scaled(1, 1)
            return True

        assert all(orb.run_spmd_client(1, stale_client))

    def test_name_is_gone_after_shutdown(self, orb, idl, servant_class):
        group = orb.serve("gone2", lambda ctx: servant_class(), 1)
        group.shutdown()

        def client(c):
            from repro.orb.naming import NamingError

            with pytest.raises(NamingError):
                idl.diff_object._bind("gone2", c.runtime)
            return True

        assert all(orb.run_spmd_client(1, client))

    def test_rebind_after_shutdown_serves_again(self, orb, idl, servant_class):
        group = orb.serve("phoenix", lambda ctx: servant_class(), 2)
        group.shutdown()
        orb.serve("phoenix", lambda ctx: servant_class(), 3)

        def client(c):
            proxy = idl.diff_object._spmd_bind("phoenix", c.runtime)
            return proxy.scaled(3, 3)

        assert orb.run_spmd_client(2, client) == [(9, 4)] * 2

    def test_closed_runtime_rejects_new_invocations(
        self, orb, idl, servant_class
    ):
        orb.serve("alive", lambda ctx: servant_class(), 1)
        runtime = orb.client_runtime()
        proxy = idl.diff_object._bind("alive", runtime)
        assert proxy.scaled(1, 1) == (1, 2)
        runtime.close()
        with pytest.raises(Exception):
            proxy.scaled(1, 1)
