"""Pipelined non-blocking invocations end to end (ISSUE 3 tentpole).

Covers the reply demultiplexer (replies arriving out of launch order
resolve the right futures), interleaved multi-port chunk streams from
concurrently in-flight requests, the ``pipeline_depth`` knob, and the
serial dispatch pool's two ordering policies — over both the
in-process fabric and real TCP loopback.
"""

import contextlib
import threading
import time

import numpy as np
import pytest

from repro import ORB, compile_idl
from repro.orb.naming import NamingService
from repro.orb.socketnet import SocketFabric

PIPE_IDL = """
typedef dsequence<double> vec;

interface pipe {
    vec echo(in vec data);
    double tag(in double x);
};
"""

FABRICS = ["inproc", "socket"]


@pytest.fixture(scope="module")
def idl():
    return compile_idl(PIPE_IDL, module_name="pipelining_idl")


@contextlib.contextmanager
def two_orbs(fabric):
    """(server ORB, client ORB) joined by the requested fabric."""
    if fabric == "inproc":
        with ORB("pipeline-test") as orb:
            yield orb, orb
        return
    naming = NamingService()
    with SocketFabric("pipe-server") as sf, SocketFabric("pipe-client") as cf:
        server = ORB("pipe-server", fabric=sf, naming=naming)
        client = ORB("pipe-client", fabric=cf, naming=naming)
        with server, client:
            yield server, client


def make_tagger(idl, record, gate=None):
    class Tagger(idl.pipe_skel):
        def echo(self, data):
            return data

        def tag(self, x):
            if gate is not None:
                gate.wait(timeout=20)
            record.append(x)
            return x

    return Tagger


class TestOutOfOrderReplies:
    @pytest.mark.parametrize("fabric", FABRICS)
    def test_reversed_reply_order_resolves_right_futures(self, idl, fabric):
        """The slow object's reply arrives *after* the fast object's
        even though it was requested first; the demux must still hand
        each future its own reply (the old wire path raised
        RemoteError on any out-of-order reply)."""
        gate = threading.Event()
        slow_record, fast_record = [], []
        with two_orbs(fabric) as (server, client):
            server.serve(
                "slow",
                lambda ctx: make_tagger(idl, slow_record, gate)(),
                nthreads=1,
            )
            server.serve(
                "fast", lambda ctx: make_tagger(idl, fast_record)(),
                nthreads=1,
            )
            runtime = client.client_runtime(label="ooo", pipeline_depth=4)
            try:
                slow = idl.pipe._bind("slow", runtime)
                fast = idl.pipe._bind("fast", runtime)
                f_slow = slow.tag_nb(1.0)
                f_fast = fast.tag_nb(2.0)
                # The fast object answers while the slow one is still
                # blocked: its reply is genuinely first on the wire.
                deadline = time.monotonic() + 20
                while not fast_record and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert fast_record == [2.0]
                assert slow_record == []
                gate.set()
                assert f_slow.value(timeout=20) == 1.0
                assert f_fast.value(timeout=20) == 2.0
            finally:
                gate.set()
                runtime.close()


class TestInterleavedChunks:
    @pytest.mark.parametrize("fabric", FABRICS)
    @pytest.mark.parametrize("transfer", ["multiport", "centralized"])
    def test_two_in_flight_transfers_stay_separate(
        self, idl, fabric, transfer
    ):
        """Data chunks of two concurrently pipelined requests
        interleave on the wire but land in the right sequences."""
        with two_orbs(fabric) as (server, client):
            server.serve(
                "pipe",
                lambda ctx: make_tagger(idl, [])(),
                nthreads=1,
                dispatch_policy="concurrent",
            )
            runtime = client.client_runtime(label="mix", pipeline_depth=4)
            try:
                proxy = idl.pipe._bind("pipe", runtime, transfer=transfer)
                ramp = np.arange(4096, dtype=np.float64)
                futures = [
                    proxy.echo_nb(idl.vec.from_global(ramp + 1000 * i))
                    for i in range(4)
                ]
                for i, future in enumerate(futures):
                    np.testing.assert_array_equal(
                        future.value(timeout=30).local_data(),
                        ramp + 1000 * i,
                    )
            finally:
                runtime.close()


class ConcurrencyGauge:
    """Tracks how many servant executions overlap."""

    def __init__(self):
        self._lock = threading.Lock()
        self.active = 0
        self.peak = 0

    def __enter__(self):
        with self._lock:
            self.active += 1
            self.peak = max(self.peak, self.active)

    def __exit__(self, *exc):
        with self._lock:
            self.active -= 1


class TestDepthAndDispatch:
    def make_gauged(self, idl, gauge, dwell=0.05):
        class Gauged(idl.pipe_skel):
            def echo(self, data):
                return data

            def tag(self, x):
                with gauge:
                    time.sleep(dwell)
                return x

        return Gauged

    def test_depth_one_keeps_requests_serial(self, idl):
        gauge = ConcurrencyGauge()
        with two_orbs("inproc") as (server, client):
            server.serve(
                "pipe",
                lambda ctx: self.make_gauged(idl, gauge)(),
                nthreads=1,
                dispatch_policy="concurrent",
            )
            runtime = client.client_runtime(label="d1", pipeline_depth=1)
            try:
                proxy = idl.pipe._bind("pipe", runtime)
                futures = [proxy.tag_nb(float(i)) for i in range(5)]
                assert [f.value(timeout=20) for f in futures] == [
                    0.0, 1.0, 2.0, 3.0, 4.0,
                ]
            finally:
                runtime.close()
        # Depth 1 admits one request at a time even though the server
        # would happily overlap them.
        assert gauge.peak == 1

    def test_deep_pipeline_overlaps_on_concurrent_policy(self, idl):
        gauge = ConcurrencyGauge()
        with two_orbs("inproc") as (server, client):
            server.serve(
                "pipe",
                lambda ctx: self.make_gauged(idl, gauge)(),
                nthreads=1,
                dispatch_policy="concurrent",
            )
            runtime = client.client_runtime(label="d4", pipeline_depth=4)
            try:
                proxy = idl.pipe._bind("pipe", runtime)
                futures = [proxy.tag_nb(float(i)) for i in range(6)]
                assert [f.value(timeout=20) for f in futures] == [
                    0.0, 1.0, 2.0, 3.0, 4.0, 5.0,
                ]
            finally:
                runtime.close()
        assert gauge.peak >= 2

    def test_client_fifo_policy_preserves_one_clients_order(self, idl):
        record = []
        with two_orbs("inproc") as (server, client):
            server.serve(
                "pipe",
                lambda ctx: make_tagger(idl, record)(),
                nthreads=1,  # default dispatch_policy="client-fifo"
            )
            runtime = client.client_runtime(label="fifo", pipeline_depth=8)
            try:
                proxy = idl.pipe._bind("pipe", runtime)
                futures = [proxy.tag_nb(float(i)) for i in range(8)]
                for future in futures:
                    future.value(timeout=20)
            finally:
                runtime.close()
        assert record == [float(i) for i in range(8)]

    def test_bad_dispatch_policy_rejected(self, idl):
        with two_orbs("inproc") as (server, _client):
            with pytest.raises(ValueError, match="dispatch_policy"):
                server.serve(
                    "pipe",
                    lambda ctx: make_tagger(idl, [])(),
                    nthreads=1,
                    dispatch_policy="chaotic",
                )

    def test_bad_pipeline_depth_rejected(self, idl):
        with two_orbs("inproc") as (_server, client):
            with pytest.raises(ValueError, match="depth"):
                client.client_runtime(label="bad", pipeline_depth=0)
