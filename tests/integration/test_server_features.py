"""Server-side feature tests: request interruption (§2.1) and wire
robustness."""

import threading
import time

import numpy as np
import pytest

from repro.orb.transport import KIND_DATA, KIND_REQUEST


class TestServicePending:
    """§2.1: 'PARDIS also allows the server to interrupt its
    computation in order to process outstanding requests.'"""

    def test_long_computation_services_queued_requests(self, orb, idl):
        in_loop = threading.Event()
        served_mid_flight = []

        class LongRunning(idl.diff_object_skel):
            def diffusion(self, timestep, data):
                # A long computation that yields to the ORB each
                # iteration: the queued short request is served
                # mid-flight, then the computation completes.
                for i in range(5000):
                    if self.rank == 0 and i == 0:
                        in_loop.set()
                    # service_pending is collective and returns the
                    # same count on every thread (the request is
                    # broadcast), so this break is SPMD-consistent.
                    if self.service_pending():
                        served_mid_flight.append(i)
                        break
                    time.sleep(0.001)
                data.local_data()[:] += float(timestep)

            def scaled(self, factor, counter):
                # The short request that arrives mid-computation.
                return factor, counter

        orb.serve("busy", lambda ctx: LongRunning(), 2)

        short_result = {}

        def short_client():
            runtime = orb.client_runtime(label="short")
            proxy = idl.diff_object._bind("busy", runtime)
            assert in_loop.wait(timeout=20)
            short_result["value"] = proxy.scaled(7, 7)
            runtime.close()

        def long_client(c):
            proxy = idl.diff_object._spmd_bind("busy", c.runtime)
            seq = idl.darray.from_global(np.zeros(10), comm=c.comm)
            proxy.diffusion(2000, seq)
            return seq.allgather()[0]

        interloper = threading.Thread(target=short_client)
        interloper.start()
        results = orb.run_spmd_client(2, long_client)
        interloper.join(30)

        assert results == [2000.0, 2000.0]
        # The short invocation completed even though the object was
        # mid-way through a long one.
        assert short_result["value"] == (7, 7)
        assert served_mid_flight, "request was not served mid-flight"

    def test_service_pending_returns_zero_when_idle(self, orb, idl):
        class Idle(idl.diff_object_skel):
            def scaled(self, factor, counter):
                return self.service_pending(), counter

        orb.serve("idle", lambda ctx: Idle(), 2)

        def client(c):
            proxy = idl.diff_object._spmd_bind("idle", c.runtime)
            return proxy.scaled(1, 1)

        assert orb.run_spmd_client(2, client) == [(0, 1)] * 2

    def test_service_pending_outside_activation_rejected(self, idl):
        servant = idl.diff_object_skel()
        with pytest.raises(RuntimeError, match="activated"):
            servant.service_pending()


class TestWireRobustness:
    def test_garbage_on_request_port_is_dropped(self, orb, idl, servant_class):
        group = orb.serve("tough", lambda ctx: servant_class(), 2)
        attacker = orb.fabric.open_port("attacker")
        # Fire junk datagrams at the object's request port.
        for junk in (b"", b"\x00", b"\x01garbage" * 10, b"\xff" * 64):
            attacker.send(
                group.reference.request_port, junk, KIND_REQUEST
            )
        attacker.close()

        def client(c):
            proxy = idl.diff_object._spmd_bind("tough", c.runtime)
            return proxy.scaled(3, 4)

        # The object survives and keeps serving real requests.
        assert orb.run_spmd_client(2, client) == [(12, 5)] * 2

    def test_unexpected_data_chunks_do_not_corrupt(self, orb, idl, servant_class):
        """Chunks for an unknown request id just sit in the collector;
        they must never be matched into another request."""
        from repro.orb.request import DataChunk, PHASE_REQUEST

        group = orb.serve("tough2", lambda ctx: servant_class(), 2)
        attacker = orb.fabric.open_port("attacker")
        rogue = DataChunk(
            request_id=999_999,
            param="data",
            phase=PHASE_REQUEST,
            src_rank=0,
            dst_rank=0,
            global_lo=0,
            global_hi=4,
            payload=np.full(4, -66.0).tobytes(),
        )
        attacker.send(
            group.reference.data_ports[0], rogue.encode(), KIND_DATA
        )
        attacker.close()

        def client(c):
            proxy = idl.diff_object._spmd_bind("tough2", c.runtime)
            seq = idl.darray.from_global(np.ones(8), comm=c.comm)
            proxy.diffusion(1, seq)
            return seq.allgather()

        for result in orb.run_spmd_client(2, client):
            np.testing.assert_array_equal(result, np.full(8, 2.0))


class TestActivationFailures:
    def test_broken_servant_factory_fails_fast(self, orb, idl):
        import time

        from repro.rts.executor import SpmdError

        def broken_factory(ctx):
            raise RuntimeError("factory exploded")

        started = time.monotonic()
        with pytest.raises(SpmdError, match="factory exploded"):
            orb.serve("doomed", broken_factory, 2)
        assert time.monotonic() - started < 10.0
        # No naming entry, no leaked ports for the doomed object.
        assert ("doomed", "") not in orb.naming.names()

    def test_non_servant_factory_rejected(self, orb, idl):
        from repro.rts.executor import SpmdError

        with pytest.raises(SpmdError, match="not a Servant"):
            orb.serve("wrong", lambda ctx: object(), 1)
