"""Protocol-pattern tests reproducing Figures 2 and 3.

Figure 2 (centralized): run-time-system communication (gather at the
client, scatter at the server) surrounds a single thick network
transfer between the two communicating threads.

Figure 3 (multi-port): no run-time-system gather/scatter for argument
data; instead each client thread sends directly to every server thread
whose block it overlaps.

These tests run a real invocation with a tracer attached and assert
the exact message pattern of each figure.
"""

import numpy as np
import pytest

from repro import ORB, compile_idl
from repro.orb.transfer import Tracer

IDL = """
typedef dsequence<double> darray;
interface diff_object {
    void diffusion(in long timestep, inout darray data);
};
"""


@pytest.fixture(scope="module")
def idl():
    return compile_idl(IDL, module_name="trace_idl")


@pytest.fixture()
def traced_orb():
    tracer = Tracer()
    orb = ORB(tracer=tracer, timeout=30.0)
    yield orb, tracer
    orb.shutdown()


def run_diffusion(orb, idl, transfer, nclient, nserver, n=120):
    class Impl(idl.diff_object_skel):
        def diffusion(self, timestep, data):
            data.local_data()[:] += timestep

    orb.serve("example", lambda ctx: Impl(), nserver)

    def client(c):
        diff = idl.diff_object._spmd_bind(
            "example", c.runtime, transfer=transfer
        )
        seq = idl.darray.from_global(
            np.zeros(n), comm=c.comm
        )
        diff.diffusion(1, seq)
        return seq.allgather()

    results = orb.run_spmd_client(nclient, client)
    np.testing.assert_array_equal(results[0], np.ones(n))


class TestFigure2Centralized:
    NCLIENT, NSERVER = 3, 4

    def test_pattern(self, traced_orb, idl):
        orb, tracer = traced_orb
        run_diffusion(
            orb, idl, "centralized", self.NCLIENT, self.NSERVER
        )
        # Client-side gather: every non-communicating client thread
        # contributes its block to thread 0 (the dotted lines of
        # Figure 2, left).
        gathers = tracer.of_kind("rts-gather")
        client_gathers = [g for g in gathers if g[1] == "client"]
        assert {g[2] for g in client_gathers} == set(
            range(1, self.NCLIENT)
        )
        assert all(g[3] == 0 for g in client_gathers)
        # Exactly one request and one reply cross the network (the
        # thick black line).
        assert len(tracer.of_kind("net-request")) == 1
        # Reply crosses once (client side logs on receive, server on
        # send; both tagged net-reply -> 2 events for 1 message).
        assert len(tracer.of_kind("net-reply")) == 2
        # No direct thread-to-thread data chunks in this method.
        assert tracer.of_kind("net-chunk") == []
        # Server-side scatter to every non-communicating thread, and a
        # mirror gather for the inout result.
        server_scatters = [
            s for s in tracer.of_kind("rts-scatter") if s[1] == "server"
        ]
        assert {s[3] for s in server_scatters} == set(
            range(1, self.NSERVER)
        )
        server_gathers = [g for g in gathers if g[1] == "server"]
        assert {g[2] for g in server_gathers} == set(
            range(1, self.NSERVER)
        )
        # Client scatters the returned data back over its threads.
        client_scatters = [
            s for s in tracer.of_kind("rts-scatter") if s[1] == "client"
        ]
        assert {s[3] for s in client_scatters} == set(
            range(1, self.NCLIENT)
        )

    def test_synchronization_points(self, traced_orb, idl):
        orb, tracer = traced_orb
        run_diffusion(orb, idl, "centralized", 2, 2)
        syncs = tracer.of_kind("sync")
        assert ("sync", "client", "pre-invoke") in syncs
        assert ("sync", "client", "post-invoke") in syncs
        assert ("sync", "server", "post-invoke") in syncs


class TestFigure3MultiPort:
    NCLIENT, NSERVER = 3, 4

    def test_pattern(self, traced_orb, idl):
        orb, tracer = traced_orb
        # 120 elements over 3 client threads (40 each) and 4 server
        # threads (30 each): client 0 -> servers {0,1}, client 1 ->
        # servers {1,2}, client 2 -> servers {2,3}.
        run_diffusion(orb, idl, "multiport", self.NCLIENT, self.NSERVER)
        # The header still travels centralized: one request message.
        assert len(tracer.of_kind("net-request")) == 1
        # Request-phase chunks: exactly the block-intersection pattern.
        request_chunks = {
            (c[3], c[4])
            for c in tracer.of_kind("net-chunk")
            if c[1] == 0  # PHASE_REQUEST
        }
        assert request_chunks == {
            (0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3),
        }
        # Reply-phase chunks mirror the pattern (server -> client).
        reply_chunks = {
            (c[3], c[4])
            for c in tracer.of_kind("net-chunk")
            if c[1] == 1  # PHASE_REPLY
        }
        assert reply_chunks == {
            (0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2),
        }
        # No run-time-system gather/scatter of argument data at all:
        # "communication is direct, no need for gather and scatter".
        assert tracer.of_kind("rts-gather") == []
        assert tracer.of_kind("rts-scatter") == []

    def test_chunk_volume_matches_argument(self, traced_orb, idl):
        orb, tracer = traced_orb
        n = 120
        run_diffusion(orb, idl, "multiport", 3, 4, n=n)
        sent = sum(
            c[5] for c in tracer.of_kind("net-chunk") if c[1] == 0
        )
        returned = sum(
            c[5] for c in tracer.of_kind("net-chunk") if c[1] == 1
        )
        assert sent == n and returned == n

    def test_aligned_layouts_minimize_sends(self, traced_orb, idl):
        """Equal client and server thread counts with blockwise layout
        on both sides: exactly one chunk per thread per direction —
        'only the minimum number of sends in each case' (§3.3)."""
        orb, tracer = traced_orb
        run_diffusion(orb, idl, "multiport", 4, 4, n=128)
        request_chunks = [
            c for c in tracer.of_kind("net-chunk") if c[1] == 0
        ]
        assert sorted((c[3], c[4]) for c in request_chunks) == [
            (r, r) for r in range(4)
        ]
