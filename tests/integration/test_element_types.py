"""Distributed sequences of every numeric IDL element type, end to
end through both transfer methods (element sizes 1..8 bytes exercise
the chunk byte math)."""

import numpy as np
import pytest

from repro import ORB, compile_idl
from repro.core import TransferMethod

IDL = """
typedef dsequence<octet>  bytes_seq;
typedef dsequence<short>  short_seq;
typedef dsequence<long>   long_seq;
typedef dsequence<long long> llong_seq;
typedef dsequence<float>  float_seq;
typedef dsequence<double> double_seq;

interface mixer {
    void bump_bytes(inout bytes_seq xs);
    void bump_shorts(inout short_seq xs);
    void bump_longs(inout long_seq xs);
    void bump_llongs(inout llong_seq xs);
    void bump_floats(inout float_seq xs);
    void bump_doubles(inout double_seq xs);
};
"""

CASES = [
    ("bytes_seq", "bump_bytes", np.uint8),
    ("short_seq", "bump_shorts", np.int16),
    ("long_seq", "bump_longs", np.int32),
    ("llong_seq", "bump_llongs", np.int64),
    ("float_seq", "bump_floats", np.float32),
    ("double_seq", "bump_doubles", np.float64),
]


@pytest.fixture(scope="module")
def stack():
    idl = compile_idl(IDL, module_name="element_types_idl")

    class Impl(idl.mixer_skel):
        pass

    def bump(self, xs):
        xs.local_data()[:] = xs.local_data() + 1

    for _typedef, op, _dtype in CASES:
        setattr(Impl, op, bump)

    orb = ORB(timeout=30.0)
    orb.serve("mixer", lambda ctx: Impl(), 3)
    yield orb, idl
    orb.shutdown()


@pytest.mark.parametrize("typedef,op,dtype", CASES)
@pytest.mark.parametrize(
    "transfer", [TransferMethod.CENTRALIZED, TransferMethod.MULTIPORT]
)
def test_element_type_roundtrip(stack, typedef, op, dtype, transfer):
    orb, idl = stack
    factory = getattr(idl, typedef)
    assert factory.dtype == dtype

    def client(c):
        proxy = idl.mixer._spmd_bind("mixer", c.runtime, transfer=transfer)
        seq = factory.from_global(
            np.arange(37, dtype=dtype) % 100, comm=c.comm
        )
        getattr(proxy, op)(seq)
        return seq.allgather()

    expected = (np.arange(37, dtype=dtype) % 100) + 1
    for result in orb.run_spmd_client(2, client):
        assert result.dtype == dtype
        np.testing.assert_array_equal(result, expected)
