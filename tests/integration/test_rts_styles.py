"""The ORB over both RTS interfaces (§2.3): the implemented
message-passing interface and the planned one-sided alternative."""

import numpy as np
import pytest

STYLES = ["message-passing", "one-sided"]


@pytest.mark.parametrize("server_style", STYLES)
@pytest.mark.parametrize("client_style", STYLES)
def test_centralized_invocation_under_any_rts_pairing(
    orb, idl, servant_class, server_style, client_style
):
    """The transfer engines program against the RuntimeSystem
    contract, so any client/server pairing of RTS styles must yield
    identical results (only the gather/scatter mechanics differ)."""
    orb.serve(
        "styled",
        lambda ctx: servant_class(),
        3,
        rts_style=server_style,
    )

    from repro.core.orb import ClientContext
    from repro.rts.executor import SpmdExecutor

    def body(rank_ctx):
        runtime = orb.client_runtime(
            rank_ctx.comm, rts_style=client_style
        )
        try:
            c = ClientContext(
                rank=rank_ctx.rank,
                size=2,
                comm=rank_ctx.comm,
                runtime=runtime,
            )
            proxy = idl.diff_object._spmd_bind(
                "styled", c.runtime, transfer="centralized"
            )
            seq = idl.darray.from_global(
                np.arange(13, dtype=np.float64), comm=c.comm
            )
            proxy.diffusion(4, seq)
            return seq.allgather()
        finally:
            runtime.close()

    results = SpmdExecutor(2).run(body)
    for result in results:
        np.testing.assert_array_equal(
            result, np.arange(13, dtype=np.float64) + 4
        )


def test_unknown_rts_style_rejected(orb):
    with pytest.raises(ValueError, match="unknown RTS style"):
        from repro.rts.mpi import create_group

        comms = create_group(1)
        orb.client_runtime(comms[0], rts_style="telepathic")
