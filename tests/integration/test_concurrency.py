"""Concurrency integration tests: several clients, several objects,
interleaved transfers, shutdown behaviour."""

import threading

import numpy as np
import pytest

from repro.core.orb import SpmdClientGroup


def serve(orb, servant_class, name="example", nthreads=4, **kw):
    return orb.serve(name, lambda ctx: servant_class(), nthreads, **kw)


class TestMultipleClients:
    def test_two_spmd_clients_share_one_server(self, orb, idl, servant_class):
        """The multi-port design separates header from data precisely
        so concurrent clients cannot interleave corruptly (§3.3)."""
        serve(orb, servant_class, nthreads=3)
        results = {}

        def run_client(tag, nthreads, rounds):
            def client(c):
                diff = idl.diff_object._spmd_bind("example", c.runtime)
                seq = idl.darray.from_global(
                    np.full(60, float(tag)), comm=c.comm
                )
                for _ in range(rounds):
                    diff.diffusion(1, seq)
                return seq.allgather()

            results[tag] = orb.run_spmd_client(nthreads, client)

        threads = [
            threading.Thread(target=run_client, args=(1, 2, 5)),
            threading.Thread(target=run_client, args=(2, 4, 3)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        np.testing.assert_array_equal(
            results[1][0], np.full(60, 6.0)
        )
        np.testing.assert_array_equal(
            results[2][0], np.full(60, 5.0)
        )

    def test_mixed_transfer_methods_concurrently(
        self, orb, idl, servant_class
    ):
        serve(orb, servant_class, nthreads=2)
        results = {}

        def run_client(tag, transfer):
            def client(c):
                diff = idl.diff_object._spmd_bind(
                    "example", c.runtime, transfer=transfer
                )
                seq = idl.darray.from_global(
                    np.zeros(30), comm=c.comm
                )
                for _ in range(4):
                    diff.diffusion(tag, seq)
                return seq.allgather()

            results[tag] = orb.run_spmd_client(2, client)

        threads = [
            threading.Thread(target=run_client, args=(1, "centralized")),
            threading.Thread(target=run_client, args=(10, "multiport")),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        np.testing.assert_array_equal(results[1][0], np.full(30, 4.0))
        np.testing.assert_array_equal(results[10][0], np.full(30, 40.0))

    def test_many_serial_clients(self, orb, idl, servant_class):
        serve(orb, servant_class, nthreads=2)

        def client(c):
            diff = idl.diff_object._bind("example", c.runtime)
            seq = idl.darray.adopt(np.full(8, float(c.rank)))
            diff.diffusion(c.rank, seq)
            return seq.local_data()[0]

        results = orb.run_spmd_client(6, client)
        assert results == [float(2 * r) for r in range(6)]


class TestMultipleObjects:
    def test_two_objects_on_one_orb(self, orb, idl, servant_class):
        serve(orb, servant_class, name="alpha", nthreads=2)
        serve(orb, servant_class, name="beta", nthreads=3)

        def client(c):
            a = idl.diff_object._spmd_bind("alpha", c.runtime)
            b = idl.diff_object._spmd_bind("beta", c.runtime)
            seq = idl.darray.from_global(np.zeros(18), comm=c.comm)
            a.diffusion(1, seq)
            b.diffusion(10, seq)
            return seq.allgather()

        for result in orb.run_spmd_client(2, client):
            np.testing.assert_array_equal(result, np.full(18, 11.0))

    def test_parallel_client_to_multiple_objects_via_bind(
        self, orb, idl, servant_class
    ):
        """§2.1: '_bind … can be useful to parallel clients which want
        to interact in parallel with multiple distributed objects.'"""
        for i in range(3):
            serve(orb, servant_class, name=f"worker{i}", nthreads=1)

        def client(c):
            proxy = idl.diff_object._bind(f"worker{c.rank}", c.runtime)
            seq = idl.darray.adopt(np.zeros(4))
            proxy.diffusion(c.rank + 1, seq)
            return seq.local_data()[0]

        assert orb.run_spmd_client(3, client) == [1.0, 2.0, 3.0]


class TestPersistentClientGroup:
    def test_client_group_reuse(self, orb, idl, servant_class):
        serve(orb, servant_class, nthreads=2)
        group = SpmdClientGroup(orb, 2)

        def session(c, step):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            seq = idl.darray.from_global(np.zeros(10), comm=c.comm)
            diff.diffusion(step, seq)
            return seq.allgather()[0]

        assert group.run(session, 3) == [3.0, 3.0]
        assert group.run(session, 4) == [4.0, 4.0]


class TestLifecycle:
    def test_shutdown_unbinds_names(self, orb, idl, servant_class):
        group = serve(orb, servant_class, nthreads=2)
        group.shutdown()
        assert ("example", "") not in orb.naming.names()

    def test_shutdown_is_idempotent(self, orb, idl, servant_class):
        group = serve(orb, servant_class, nthreads=2)
        group.shutdown()
        group.shutdown()

    def test_orb_context_manager(self, idl, servant_class):
        from repro import ORB

        with ORB(timeout=20.0) as orb:
            serve(orb, servant_class, nthreads=2)

            def client(c):
                diff = idl.diff_object._spmd_bind("example", c.runtime)
                return diff.scaled(3, 3)

            assert orb.run_spmd_client(1, client) == [(9, 4)]
        # After shutdown all ports are gone.
        assert orb.fabric.open_port_count() == 0

    def test_invocations_counted_per_server_thread(
        self, orb, idl, servant_class
    ):
        """Every computing thread of the SPMD object receives every
        request — the defining property of SPMD objects (§2)."""
        servants = []

        def factory(ctx):
            servant = servant_class()
            servants.append(servant)
            return servant

        orb.serve("example", factory, 4)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            seq = idl.darray.from_global(np.zeros(8), comm=c.comm)
            diff.diffusion(1, seq)
            diff.diffusion(1, seq)
            return True

        orb.run_spmd_client(2, client)
        assert [s._invocations for s in servants] == [2, 2, 2, 2]
