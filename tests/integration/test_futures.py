"""Non-blocking invocation (futures) end-to-end tests (§2.1)."""

import time

import numpy as np
import pytest


def serve(orb, servant_class, nthreads=2, **kw):
    return orb.serve("example", lambda ctx: servant_class(), nthreads, **kw)


class TestFutures:
    def test_nb_returns_future(self, orb, idl, servant_class):
        serve(orb, servant_class)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            future = diff.scaled_nb(6, 7)
            assert not isinstance(future, tuple)
            return future.value(timeout=20)

        assert orb.run_spmd_client(2, client) == [(42, 8)] * 2

    def test_nb_overlaps_local_compute(self, orb, idl, servant_class):
        """The paper's point: use remote resources concurrently with
        the client's own."""

        class Slow(servant_class):
            def checksum(self, data):
                time.sleep(0.1)
                return super().checksum(data)

        orb.serve("example", lambda ctx: Slow(), 2)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            seq = idl.darray.from_global(np.ones(10), comm=c.comm)
            future = diff.checksum_nb(seq)
            local_work = sum(i * i for i in range(1000))
            assert local_work > 0
            return future.value(timeout=20)

        assert orb.run_spmd_client(2, client) == [10.0, 10.0]

    def test_multiple_outstanding_futures_resolve_in_order(
        self, orb, idl, servant_class
    ):
        serve(orb, servant_class, nthreads=3)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            futures = [diff.scaled_nb(i, 10) for i in range(5)]
            return [f.value(timeout=20) for f in futures]

        for result in orb.run_spmd_client(2, client):
            assert result == [(i * 10, 11) for i in range(5)]

    def test_nb_with_distributed_inout(self, orb, idl, servant_class):
        serve(orb, servant_class, nthreads=2)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            seq = idl.darray.from_global(np.zeros(12), comm=c.comm)
            future = diff.diffusion_nb(9, seq)
            future.value(timeout=20)
            return seq.allgather()

        for result in orb.run_spmd_client(2, client):
            np.testing.assert_array_equal(result, np.full(12, 9.0))

    def test_future_carries_remote_exception(self, orb, idl, servant_class):
        serve(orb, servant_class)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            future = diff.validate_nb(-3)
            with pytest.raises(idl.bad_step) as excinfo:
                future.value(timeout=20)
            return excinfo.value.step

        assert orb.run_spmd_client(1, client) == [-3]

    def test_blocking_after_nb_preserves_order(self, orb, idl, servant_class):
        """A blocking call issued while futures are outstanding must
        not overtake them (FIFO per rank)."""
        order = []

        class Recording(servant_class):
            def scaled(self, factor, counter):
                order.append(factor)
                return super().scaled(factor, counter)

        orb.serve("example", lambda ctx: Recording(), 1)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            f1 = diff.scaled_nb(1, 0)
            f2 = diff.scaled_nb(2, 0)
            blocking = diff.scaled(3, 0)
            return f1.value(5), f2.value(5), blocking

        orb.run_spmd_client(1, client)
        assert order == [1, 2, 3]

    def test_future_then_chaining(self, orb, idl, servant_class):
        serve(orb, servant_class)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            doubled = diff.scaled_nb(5, 1).then(lambda r: r[0] * 2)
            return doubled.value(timeout=20)

        assert orb.run_spmd_client(2, client) == [10, 10]
