"""Shared fixtures for the end-to-end integration tests."""

import numpy as np
import pytest

from repro import ORB, compile_idl
from repro.rts.mpi import SUM

#: A representative IDL exercising every argument direction, both
#: distributed and plain, exceptions, oneway and attributes.
TEST_IDL = """
typedef dsequence<double> darray;
typedef dsequence<long> iarray;

exception bad_step { long step; string reason; };

interface diff_object {
    void diffusion(in long timestep, inout darray data);
    double checksum(in darray data);
    darray make_ramp(in long n);
    void split(in darray data, out darray low, out double pivot);
    long scaled(in long factor, inout long counter);
    void resize_to(in long n, inout darray data);
    void validate(in long step) raises (bad_step);
    oneway void note(in long token);
    attribute long invocations;
};
"""


@pytest.fixture(scope="module")
def idl():
    return compile_idl(TEST_IDL, module_name="integration_idl")


def make_servant_class(idl):
    class DiffServant(idl.diff_object_skel):
        """Reference SPMD servant used across the integration tests."""

        def __init__(self):
            self._invocations = 0
            self.notes = []

        # -- helpers -------------------------------------------------

        def _allreduce(self, value):
            if self.comm is None:
                return value
            return self.comm.allreduce(value, op=SUM)

        # -- operations ----------------------------------------------

        def diffusion(self, timestep, data):
            self._invocations += 1
            data.local_data()[:] += float(timestep)

        def checksum(self, data):
            return float(self._allreduce(data.local_data().sum()))

        def make_ramp(self, n):
            seq = idl.darray.create(n, comm=self.comm)
            lo, hi = seq.local_range()
            seq.local_data()[:] = np.arange(lo, hi, dtype=np.float64)
            return seq

        def split(self, data, ):
            raise NotImplementedError  # overridden below

        def scaled(self, factor, counter):
            return factor * counter, counter + 1

        def resize_to(self, n, data):
            data.set_length(n)

        def validate(self, step):
            if step < 0:
                raise idl.bad_step(step=step, reason="negative step")

        def note(self, token):
            self.notes.append(token)

        def _get_invocations(self):
            return self._invocations

        def _set_invocations(self, value):
            self._invocations = value

    def split(self, data):
        # out darray 'low' (first half) + out double 'pivot'.
        full_len = data.length()
        half = full_len // 2
        low = idl.darray.create(half, comm=self.comm)
        lo, hi = low.local_range()
        full = data.allgather()
        low.local_data()[:] = full[lo:hi]
        pivot = float(full[half]) if half < full_len else 0.0
        return low, pivot

    DiffServant.split = split
    return DiffServant


@pytest.fixture(scope="module")
def servant_class(idl):
    return make_servant_class(idl)


@pytest.fixture()
def orb():
    orb = ORB(timeout=30.0)
    yield orb
    orb.shutdown()
