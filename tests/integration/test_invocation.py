"""End-to-end invocation tests: the full PARDIS stack, both transfer
methods, varied client/server geometries."""

import numpy as np
import pytest

from repro.dist import Proportions

TRANSFERS = ["centralized", "multiport"]
GEOMETRIES = [(1, 1), (1, 4), (2, 3), (4, 2), (3, 8)]


def serve(orb, servant_class, name="example", nthreads=4, **kw):
    return orb.serve(name, lambda ctx: servant_class(), nthreads, **kw)


@pytest.mark.parametrize("transfer", TRANSFERS)
@pytest.mark.parametrize("nclient,nserver", GEOMETRIES)
class TestGeometries:
    def test_inout_roundtrip(
        self, orb, idl, servant_class, transfer, nclient, nserver
    ):
        serve(orb, servant_class, nthreads=nserver)
        n = 977  # deliberately not divisible by thread counts

        def client(c):
            diff = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            seq = idl.darray.from_global(
                np.arange(n, dtype=np.float64), comm=c.comm
            )
            diff.diffusion(5, seq)
            diff.diffusion(2, seq)
            return seq.allgather()

        results = orb.run_spmd_client(nclient, client)
        expected = np.arange(n, dtype=np.float64) + 7
        for result in results:
            np.testing.assert_array_equal(result, expected)

    def test_in_only_argument(
        self, orb, idl, servant_class, transfer, nclient, nserver
    ):
        serve(orb, servant_class, nthreads=nserver)
        n = 500

        def client(c):
            diff = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            seq = idl.darray.from_global(
                np.ones(n), comm=c.comm
            )
            return diff.checksum(seq)

        results = orb.run_spmd_client(nclient, client)
        assert results == [float(n)] * nclient


@pytest.mark.parametrize("transfer", TRANSFERS)
class TestArgumentShapes:
    def test_distributed_return_value(self, orb, idl, servant_class, transfer):
        serve(orb, servant_class, nthreads=3)

        def client(c):
            diff = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            ramp = diff.make_ramp(41)
            # Return values land blockwise on the client (§2.2).
            assert ramp.layout.nranks == c.size
            return ramp.allgather()

        for result in orb.run_spmd_client(2, client):
            np.testing.assert_array_equal(result, np.arange(41.0))

    def test_out_distributed_and_plain(self, orb, idl, servant_class, transfer):
        serve(orb, servant_class, nthreads=2)

        def client(c):
            diff = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            data = idl.darray.from_global(
                np.arange(10.0) * 2, comm=c.comm
            )
            low, pivot = diff.split(data)
            return low.allgather(), pivot

        for low, pivot in orb.run_spmd_client(2, client):
            np.testing.assert_array_equal(low, np.arange(5.0) * 2)
            assert pivot == 10.0

    def test_plain_inout_and_return(self, orb, idl, servant_class, transfer):
        serve(orb, servant_class, nthreads=2)

        def client(c):
            diff = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            return diff.scaled(6, 7)

        assert orb.run_spmd_client(2, client) == [(42, 8)] * 2

    def test_inout_grow(self, orb, idl, servant_class, transfer):
        serve(orb, servant_class, nthreads=3)

        def client(c):
            diff = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            seq = idl.darray.from_global(np.arange(6.0), comm=c.comm)
            diff.resize_to(10, seq)
            assert seq.length() == 10
            return seq.allgather()

        expected = np.concatenate([np.arange(6.0), np.zeros(4)])
        for result in orb.run_spmd_client(2, client):
            np.testing.assert_array_equal(result, expected)

    def test_inout_shrink(self, orb, idl, servant_class, transfer):
        serve(orb, servant_class, nthreads=2)

        def client(c):
            diff = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            seq = idl.darray.from_global(np.arange(10.0), comm=c.comm)
            diff.resize_to(4, seq)
            return seq.allgather()

        for result in orb.run_spmd_client(3, client):
            np.testing.assert_array_equal(result, np.arange(4.0))

    def test_registered_proportions_template(
        self, orb, idl, servant_class, transfer
    ):
        """§2.2: the server presets the distribution of an 'in'
        parameter before registration."""
        captured = []

        class Inspecting(servant_class):
            def diffusion(self, timestep, data):
                captured.append((self.rank, data.local_length()))
                super().diffusion(timestep, data)

        orb.serve(
            "example",
            lambda ctx: Inspecting(),
            4,
            templates={("diffusion", "data"): Proportions(2, 4, 2, 4)},
        )

        def client(c):
            diff = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            seq = idl.darray.from_global(np.arange(12.0), comm=c.comm)
            diff.diffusion(1, seq)
            return seq.allgather()

        results = orb.run_spmd_client(2, client)
        np.testing.assert_array_equal(results[0], np.arange(12.0) + 1)
        assert sorted(captured) == [(0, 2), (1, 4), (2, 2), (3, 4)]

    def test_uneven_client_distribution(self, orb, idl, servant_class, transfer):
        """§3.3: unevenly split sequences work identically."""
        serve(orb, servant_class, nthreads=3)

        def client(c):
            diff = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            seq = idl.darray.from_global(np.arange(20.0), comm=c.comm)
            seq.redistribute(Proportions(7, 1, 9, 3))
            diff.diffusion(3, seq)
            return seq.allgather()

        for result in orb.run_spmd_client(4, client):
            np.testing.assert_array_equal(result, np.arange(20.0) + 3)

    def test_empty_sequence(self, orb, idl, servant_class, transfer):
        serve(orb, servant_class, nthreads=2)

        def client(c):
            diff = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            seq = idl.darray.create(0, comm=c.comm)
            return diff.checksum(seq)

        assert orb.run_spmd_client(2, client) == [0.0, 0.0]


class TestBindModes:
    def test_serial_bind_per_thread(self, orb, idl, servant_class):
        """§2.1: _bind is non-collective — each thread interacts with
        the object on its own, using serial sequences."""
        serve(orb, servant_class, nthreads=2)

        def client(c):
            diff = idl.diff_object._bind("example", c.runtime)
            seq = idl.darray.adopt(np.full(4, float(c.rank)))
            diff.diffusion(10, seq)
            return seq.local_data().tolist()

        results = orb.run_spmd_client(3, client)
        assert results == [[10.0 + r] * 4 for r in range(3)]

    def test_serial_bind_rejects_group_sequences(
        self, orb, idl, servant_class
    ):
        serve(orb, servant_class, nthreads=1)

        def client(c):
            diff = idl.diff_object._bind("example", c.runtime)
            seq = idl.darray.create(8, comm=c.comm)
            with pytest.raises(ValueError, match="non-distributed"):
                diff.checksum(seq)
            return True

        assert all(orb.run_spmd_client(2, client))

    def test_spmd_bind_on_single_thread_degenerates(
        self, orb, idl, servant_class
    ):
        serve(orb, servant_class, nthreads=2)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            seq = idl.darray.adopt(np.ones(6))
            return diff.checksum(seq)

        assert orb.run_spmd_client(1, client) == [6.0]

    def test_bind_by_host(self, orb, idl, servant_class):
        orb.serve(
            "example", lambda ctx: servant_class(), 1, host="HOST1"
        )
        orb.serve(
            "example", lambda ctx: servant_class(), 1, host="HOST2"
        )

        def client(c):
            diff = idl.diff_object._bind("example", c.runtime, "HOST2")
            return diff.scaled(2, 3)

        assert orb.run_spmd_client(1, client) == [(6, 4)]

    def test_wrong_interface_rejected(self, orb, idl, servant_class):
        other = __import__("repro").compile_idl(
            "interface stranger { void hello(); };"
        )
        serve(orb, servant_class)

        def client(c):
            from repro.orb.operation import RemoteError

            with pytest.raises(RemoteError, match="implements"):
                other.stranger._bind("example", c.runtime)
            return True

        assert all(orb.run_spmd_client(1, client))


class TestServerModes:
    def test_centralized_only_server(self, orb, idl, servant_class):
        orb.serve(
            "example", lambda ctx: servant_class(), 3, multiport=False
        )

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            # Default transfer falls back to centralized.
            assert diff.transfer_method == "centralized"
            seq = idl.darray.from_global(np.ones(9), comm=c.comm)
            return diff.checksum(seq)

        assert orb.run_spmd_client(2, client) == [9.0, 9.0]

    def test_multiport_to_centralized_server_fails_cleanly(
        self, orb, idl, servant_class
    ):
        orb.serve(
            "example", lambda ctx: servant_class(), 2, multiport=False
        )

        def client(c):
            from repro.orb.operation import RemoteError

            diff = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer="multiport"
            )
            with pytest.raises(RemoteError, match="data ports"):
                diff.scaled(1, 1)
            return True

        assert all(orb.run_spmd_client(2, client))

    def test_oneway(self, orb, idl, servant_class):
        servants = []

        def factory(ctx):
            servant = servant_class()
            servants.append(servant)
            return servant

        group = orb.serve("example", factory, 2)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            diff.note(123)
            # A blocking call afterwards guarantees the oneway has
            # been dispatched before we assert.
            diff.scaled(1, 1)
            return True

        assert all(orb.run_spmd_client(2, client))
        assert all(s.notes == [123] for s in servants)

    def test_attribute_property(self, orb, idl, servant_class):
        serve(orb, servant_class, nthreads=2)

        def client(c):
            diff = idl.diff_object._spmd_bind("example", c.runtime)
            seq = idl.darray.from_global(np.zeros(4), comm=c.comm)
            before = diff.invocations
            diff.diffusion(1, seq)
            after = diff.invocations
            diff.invocations = 100
            return before, after, diff.invocations

        for before, after, reset in orb.run_spmd_client(2, client):
            assert (before, after, reset) == (0, 1, 100)

    def test_interface_inheritance_dispatch(self, orb):
        from repro import compile_idl

        compiled = compile_idl(
            """
            interface base { long double_it(in long x); };
            interface derived : base { long triple_it(in long x); };
            """
        )

        class Impl(compiled.derived_skel):
            def double_it(self, x):
                return 2 * x

            def triple_it(self, x):
                return 3 * x

        orb.serve("poly", lambda ctx: Impl(), 1)

        def client(c):
            proxy = compiled.derived._bind("poly", c.runtime)
            return proxy.double_it(10), proxy.triple_it(10)

        assert orb.run_spmd_client(1, client) == [(20, 30)]
