"""§2.2's client-side out-value initialization: "An 'out' argument
should be initialized by a distribution template before calling the
operation which returns it; otherwise a uniform blockwise distribution
will be assumed.  The distribution of return values is always assumed
to be blockwise [by default]."""

import numpy as np
import pytest

from repro.dist import Proportions

TRANSFERS = ["centralized", "multiport"]


def serve(orb, servant_class, nthreads=3):
    return orb.serve("example", lambda ctx: servant_class(), nthreads)


@pytest.mark.parametrize("transfer", TRANSFERS)
class TestOutTemplates:
    def test_default_is_blockwise(self, orb, idl, servant_class, transfer):
        serve(orb, servant_class)

        def client(c):
            proxy = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            ramp = proxy.make_ramp(10)
            return ramp.layout.local_lengths()

        assert orb.run_spmd_client(2, client) == [(5, 5)] * 2

    def test_return_value_template(self, orb, idl, servant_class, transfer):
        serve(orb, servant_class)

        def client(c):
            proxy = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            proxy.set_out_template(
                "make_ramp", "__return__", Proportions(1, 3)
            )
            ramp = proxy.make_ramp(12)
            np.testing.assert_array_equal(ramp.allgather(), np.arange(12.0))
            return ramp.layout.local_lengths()

        assert orb.run_spmd_client(2, client) == [(3, 9)] * 2

    def test_out_param_template(self, orb, idl, servant_class, transfer):
        serve(orb, servant_class)

        def client(c):
            proxy = idl.diff_object._spmd_bind(
                "example", c.runtime, transfer=transfer
            )
            proxy.set_out_template("split", "low", Proportions(3, 1))
            data = idl.darray.from_global(np.arange(16.0), comm=c.comm)
            low, pivot = proxy.split(data)
            np.testing.assert_array_equal(low.allgather(), np.arange(8.0))
            return low.layout.local_lengths(), pivot

        assert orb.run_spmd_client(2, client) == [((6, 2), 8.0)] * 2


class TestOutTemplateValidation:
    def test_plain_param_rejected(self, orb, idl, servant_class):
        serve(orb, servant_class, nthreads=1)

        def client(c):
            proxy = idl.diff_object._spmd_bind("example", c.runtime)
            with pytest.raises(ValueError, match="not a distributed"):
                proxy.set_out_template("split", "pivot", Proportions(1))
            with pytest.raises(ValueError, match="not a distributed"):
                proxy.set_out_template("split", "nope", Proportions(1))
            return True

        assert all(orb.run_spmd_client(1, client))

    def test_inout_param_rejected(self, orb, idl, servant_class):
        serve(orb, servant_class, nthreads=1)

        def client(c):
            proxy = idl.diff_object._spmd_bind("example", c.runtime)
            with pytest.raises(ValueError, match="inout"):
                proxy.set_out_template(
                    "diffusion", "data", Proportions(1)
                )
            return True

        assert all(orb.run_spmd_client(1, client))

    def test_wrong_rank_count_rejected(self, orb, idl, servant_class):
        serve(orb, servant_class, nthreads=1)

        def client(c):
            proxy = idl.diff_object._spmd_bind("example", c.runtime)
            with pytest.raises(ValueError, match="threads"):
                proxy.set_out_template(
                    "make_ramp", "__return__", Proportions(1, 2, 3)
                )
            return True

        assert all(orb.run_spmd_client(2, client))
