"""Failed non-blocking invocations through the future surface:
`.exception()`, `.then` chains (including their `_pre_wait` demand
flush), and pipelined requests draining behind a failed one."""

import threading

import pytest

from repro import ORB, FtPolicy, compile_idl
from repro.ft.faults import FaultyFabric
from repro.ft.policy import DeadlineExceeded
from repro.orb.transport import Fabric

NB_IDL = """
interface worker {
    double twice(in double x);
};
"""

NO_RETRY = FtPolicy(deadline_ms=200.0, max_retries=0)


@pytest.fixture(scope="module")
def idl():
    return compile_idl(NB_IDL, module_name="future_failures_idl")


class Valve:
    """Drops the listed frame kinds while armed, up to ``limit``."""

    def __init__(self, kinds, limit=None):
        self.kinds = frozenset(kinds)
        self.limit = limit
        self.injected = 0
        self.armed = False
        self._lock = threading.Lock()

    def decide(self, kind):
        with self._lock:
            if not self.armed or kind not in self.kinds:
                return ()
            if self.limit is not None and self.injected >= self.limit:
                return ()
            self.injected += 1
            return ("drop",)


def _orb(valve):
    return ORB(
        "future-failures",
        fabric=FaultyFabric(Fabric("future-failures"), valve),
        timeout=0.2,
    )


def _serve(orb, idl):
    class Worker(idl.worker_skel):
        def twice(self, x):
            return 2.0 * x

    orb.serve(
        "worker",
        lambda ctx: Worker(),
        nthreads=1,
        dispatch_policy="concurrent",
    )


def test_failed_invocation_resolves_future_with_exception(idl):
    valve = Valve(kinds=("request",))
    with _orb(valve) as orb:
        _serve(orb, idl)
        runtime = orb.client_runtime(label="nb-fail")
        try:
            proxy = idl.worker._bind("worker", runtime, ft_policy=NO_RETRY)
            valve.armed = True
            future = proxy.twice_nb(1.0)
            exc = future.exception(timeout=30.0)
            assert isinstance(exc, DeadlineExceeded)
            assert exc.operation == "twice"
            with pytest.raises(DeadlineExceeded):
                future.value(timeout=5.0)
        finally:
            runtime.close()


def test_then_chain_propagates_invocation_failure(idl):
    valve = Valve(kinds=("request",))
    with _orb(valve) as orb:
        _serve(orb, idl)
        runtime = orb.client_runtime(label="nb-then")
        try:
            proxy = idl.worker._bind("worker", runtime, ft_policy=NO_RETRY)
            valve.armed = True
            chained = proxy.twice_nb(1.0).then(lambda v: v + 1.0)
            with pytest.raises(DeadlineExceeded):
                chained.value(timeout=30.0)
        finally:
            runtime.close()


def test_then_chain_flushes_lazy_producer_on_success(idl):
    # Reading only the chained future must announce demand through to
    # the pipelined worker's lazy reply completion (`_pre_wait`), or
    # this blocks until some unrelated flush.
    valve = Valve(kinds=())
    with _orb(valve) as orb:
        _serve(orb, idl)
        runtime = orb.client_runtime(label="nb-chain")
        try:
            proxy = idl.worker._bind("worker", runtime)
            chained = proxy.twice_nb(3.0).then(lambda v: v * 10.0)
            assert chained.value(timeout=30.0) == 60.0
        finally:
            runtime.close()


def test_pipelined_requests_behind_a_failure_drain(idl):
    # Four requests in flight; the first one's request frame is lost
    # and retries are off.  The failure must resolve only its own
    # future — the three behind it complete with their own replies.
    valve = Valve(kinds=("request",), limit=1)
    with _orb(valve) as orb:
        _serve(orb, idl)
        runtime = orb.client_runtime(label="nb-drain", pipeline_depth=4)
        try:
            proxy = idl.worker._bind("worker", runtime, ft_policy=NO_RETRY)
            valve.armed = True
            futures = [proxy.twice_nb(float(i)) for i in range(4)]
            assert isinstance(
                futures[0].exception(timeout=30.0), DeadlineExceeded
            )
            for i in (1, 2, 3):
                assert futures[i].value(timeout=30.0) == 2.0 * i
        finally:
            runtime.close()


def test_failure_order_is_deterministic_across_reads(idl):
    # Reading the trailing futures first must not change outcomes:
    # the failed head still fails, the others still succeed.
    valve = Valve(kinds=("request",), limit=1)
    with _orb(valve) as orb:
        _serve(orb, idl)
        runtime = orb.client_runtime(label="nb-order", pipeline_depth=4)
        try:
            proxy = idl.worker._bind("worker", runtime, ft_policy=NO_RETRY)
            valve.armed = True
            futures = [proxy.twice_nb(float(i)) for i in range(4)]
            assert futures[3].value(timeout=30.0) == 6.0
            assert futures[1].value(timeout=30.0) == 2.0
            assert futures[2].value(timeout=30.0) == 4.0
            assert isinstance(
                futures[0].exception(timeout=30.0), DeadlineExceeded
            )
        finally:
            runtime.close()
