"""The server-side reply cache (repro.ft.dedup): admission verdicts,
replay payloads, the chunk/reply recording race, byte-budget LRU."""

import pytest

from repro.ft.dedup import ReplyCache


class TestAdmission:
    def test_budget_validated(self):
        with pytest.raises(ValueError, match="budget_bytes"):
            ReplyCache(0)

    def test_fresh_id_is_new(self):
        cache = ReplyCache(1 << 16)
        assert cache.admit(1) == "new"

    def test_duplicate_while_executing_is_in_progress(self):
        cache = ReplyCache(1 << 16)
        cache.admit(1)
        assert cache.admit(1) == "in-progress"
        assert cache.stats()["duplicates_dropped"] == 1

    def test_completed_id_is_replay(self):
        cache = ReplyCache(1 << 16)
        cache.admit(1)
        cache.record_reply(1, b"reply-frame")
        assert cache.admit(1) == "replay"
        reply, chunks = cache.replay(1)
        assert reply == b"reply-frame"
        assert chunks == {}


class TestRecording:
    def test_chunks_then_reply_merge_into_one_entry(self):
        # On a collective group peer ranks record chunks concurrently
        # with rank 0's reply; order must not matter.
        cache = ReplyCache(1 << 16)
        cache.admit(7)
        cache.record_chunks(7, 1, b"chunk-a")
        cache.record_chunks(7, 1, b"chunk-b")
        cache.record_chunks(7, 0, b"chunk-c")
        cache.record_reply(7, b"the-reply")
        reply, chunks = cache.replay(7)
        assert reply == b"the-reply"
        assert chunks == {1: [b"chunk-a", b"chunk-b"], 0: [b"chunk-c"]}

    def test_incomplete_entry_replays_none_reply(self):
        # Chunks recorded but the reply not yet: the replay path must
        # see reply None and hold off (the client will retry again).
        cache = ReplyCache(1 << 16)
        cache.admit(7)
        cache.record_chunks(7, 0, b"early")
        reply, chunks = cache.replay(7)
        assert reply is None
        assert chunks == {0: [b"early"]}

    def test_oneway_records_none_and_swallows_duplicates(self):
        cache = ReplyCache(1 << 16)
        cache.admit(3)
        cache.record_reply(3, None)
        assert cache.admit(3) == "replay"
        assert cache.replay(3) == (None, {})

    def test_chunks_for_unknown_id_are_ignored(self):
        cache = ReplyCache(1 << 16)
        cache.record_chunks(99, 0, b"orphan")
        assert len(cache) == 0

    def test_forget_drops_everything(self):
        cache = ReplyCache(1 << 16)
        cache.admit(5)
        cache.record_reply(5, b"sys-exc-reply")
        cache.forget(5)
        assert cache.admit(5) == "new"  # re-executes
        assert cache.stats()["forgotten"] == 1


class TestEviction:
    def test_lru_eviction_respects_byte_budget(self):
        cache = ReplyCache(100)
        for rid in range(4):
            cache.admit(rid)
            cache.record_reply(rid, bytes(40))
        stats = cache.stats()
        assert stats["evictions"] >= 2
        assert stats["bytes"] <= 100
        # The oldest entries went first.
        assert cache.admit(0) == "new"
        assert cache.admit(3) == "replay"

    def test_replay_refreshes_lru_position(self):
        cache = ReplyCache(100)
        cache.admit(0)
        cache.record_reply(0, bytes(40))
        cache.admit(1)
        cache.record_reply(1, bytes(40))
        assert cache.admit(0) == "replay"  # touch 0
        cache.admit(2)
        cache.record_reply(2, bytes(40))  # evicts 1, not 0
        assert cache.admit(0) == "replay"
        assert cache.admit(1) == "new"

    def test_single_giant_entry_survives_over_budget(self):
        cache = ReplyCache(10)
        cache.admit(1)
        cache.record_reply(1, bytes(50))
        assert cache.admit(1) == "replay"

    def test_evicted_entry_replays_as_missing(self):
        cache = ReplyCache(50)
        cache.admit(1)
        cache.record_reply(1, bytes(40))
        verdict = cache.admit(1)
        cache.admit(2)
        cache.record_reply(2, bytes(40))  # evicts 1
        assert verdict == "replay"
        assert cache.replay(1) == (None, {})
