"""End-to-end retry semantics on a serial client: retried drops,
reply-cache dedup, deadlines with retries disabled, multiport
degradation, and the orb.stats() snapshot."""

import threading

import pytest

from repro import ORB, FtPolicy, compile_idl
from repro.ft.faults import FaultyFabric
from repro.ft.policy import DeadlineExceeded
from repro.orb.transfer import CentralizedTransfer
from repro.orb.transport import Fabric

RETRY_IDL = """
typedef dsequence<double, 4096> vec;

interface flaky {
    double ping(in double x);
    vec echo(in vec data);
};
"""


@pytest.fixture(scope="module")
def idl():
    return compile_idl(RETRY_IDL, module_name="retries_idl")


class Valve:
    """A hand-cranked fault schedule: injects ``action`` on the listed
    frame kinds only while armed, up to ``limit`` times.  Used instead
    of FaultSchedule where a test needs to fault an exact frame (e.g.
    only the first reply) rather than a seeded fraction."""

    def __init__(self, action, kinds, limit=None):
        self.action = action
        self.kinds = frozenset(kinds)
        self.limit = limit
        self.injected = 0
        self.armed = False
        self._lock = threading.Lock()

    def decide(self, kind):
        with self._lock:
            if not self.armed or kind not in self.kinds:
                return ()
            if self.limit is not None and self.injected >= self.limit:
                return ()
            self.injected += 1
            return (self.action,)


def _serve_counting(orb, idl, counter, **kwargs):
    class Servant(idl.flaky_skel):
        def ping(self, x):
            counter.append(x)
            return x * 2.0

        def echo(self, data):
            counter.append("echo")
            return data

    orb.serve("flaky", lambda ctx: Servant(), nthreads=1, **kwargs)


def _orb_with_valve(valve, timeout=0.3):
    return ORB(
        "retries-test",
        fabric=FaultyFabric(Fabric("retries"), valve),
        timeout=timeout,
    )


RETRYING = FtPolicy(max_retries=4, backoff_base_ms=1.0, backoff_cap_ms=5.0)


class TestRetries:
    def test_dropped_request_is_retried_to_completion(self, idl):
        valve = Valve("drop", kinds=("request",), limit=1)
        calls = []
        with _orb_with_valve(valve) as orb:
            _serve_counting(orb, idl, calls)
            runtime = orb.client_runtime(label="retry")
            try:
                proxy = idl.flaky._bind(
                    "flaky", runtime, ft_policy=RETRYING
                )
                valve.armed = True
                assert proxy.ping(21.0) == 42.0
            finally:
                runtime.close()
            assert valve.injected == 1
            assert runtime.ft_stats.snapshot()["retries"] >= 1
            assert calls == [21.0]

    def test_reply_cache_replays_instead_of_reexecuting(self, idl):
        # Only the reply frame is lost: the request executed, so the
        # retry must be answered from the reply cache — the servant
        # runs exactly once even though the request arrived twice.
        valve = Valve("drop", kinds=("reply",), limit=1)
        calls = []
        with _orb_with_valve(valve) as orb:
            _serve_counting(
                orb,
                idl,
                calls,
                dispatch_policy="concurrent",
                reply_cache_bytes=1 << 20,
            )
            runtime = orb.client_runtime(label="dedup")
            try:
                proxy = idl.flaky._bind(
                    "flaky", runtime, ft_policy=RETRYING
                )
                valve.armed = True
                assert proxy.ping(5.0) == 10.0
                valve.armed = False
                assert proxy.ping(6.0) == 12.0
            finally:
                runtime.close()
            assert calls == [5.0, 6.0]
            assert runtime.ft_stats.snapshot()["retries"] >= 1
            cache_stats = orb.stats()["reply_caches"]["flaky"]
            assert cache_stats["replays"] >= 1

    def test_without_cache_lost_reply_reexecutes(self, idl):
        # The documented at-least-once fallback: cache off, a lost
        # reply means the retry executes the servant again.
        valve = Valve("drop", kinds=("reply",), limit=1)
        calls = []
        with _orb_with_valve(valve) as orb:
            _serve_counting(
                orb, idl, calls, dispatch_policy="concurrent"
            )
            runtime = orb.client_runtime(label="atleastonce")
            try:
                proxy = idl.flaky._bind(
                    "flaky", runtime, ft_policy=RETRYING
                )
                valve.armed = True
                assert proxy.ping(5.0) == 10.0
            finally:
                runtime.close()
            assert calls == [5.0, 5.0]


class TestDeadline:
    def test_retries_disabled_raises_deadline_exceeded(self, idl):
        valve = Valve("drop", kinds=("request",))
        with _orb_with_valve(valve, timeout=0.2) as orb:
            _serve_counting(orb, idl, [])
            runtime = orb.client_runtime(label="deadline")
            try:
                proxy = idl.flaky._bind(
                    "flaky",
                    runtime,
                    ft_policy=FtPolicy(deadline_ms=200.0, max_retries=0),
                )
                valve.armed = True
                with pytest.raises(DeadlineExceeded) as info:
                    proxy.ping(1.0)
            finally:
                runtime.close()
            assert info.value.operation == "ping"
            assert info.value.category == "TIMEOUT"
            assert info.value.attempts == 0
            assert runtime.ft_stats.snapshot()["deadline_exceeded"] == 1


class TestDegradation:
    def test_multiport_degrades_to_centralized(self, idl):
        # Data ports dead, request path alive: the multiport transfer
        # fails "unreachable" and the proxy permanently falls back to
        # the centralized method (paper §3.2) instead of erroring.
        valve = Valve("disconnect", kinds=("data",))
        calls = []
        with _orb_with_valve(valve) as orb:
            # Concurrent dispatch: the abandoned multiport request
            # (stuck collecting chunks that will never come, until the
            # server-side request_timeout clears it) must not order the
            # centralized fallback behind itself.
            _serve_counting(orb, idl, calls, dispatch_policy="concurrent")
            runtime = orb.client_runtime(label="degrade")
            try:
                proxy = idl.flaky._bind(
                    "flaky",
                    runtime,
                    transfer="multiport",
                    ft_policy=RETRYING,
                )
                data = idl.vec.from_global([1.0, 2.0, 3.0])
                valve.armed = True
                result = proxy.echo(data)
                assert result.length() == 3
                assert isinstance(proxy._engine, CentralizedTransfer)
                # Later invocations go centralized directly.
                assert proxy.echo(data).length() == 3
            finally:
                runtime.close()
            assert runtime.ft_stats.snapshot()["degraded"] >= 1


class TestOrbStats:
    def test_snapshot_shape_and_counters(self, idl):
        valve = Valve("drop", kinds=("request",), limit=1)
        with _orb_with_valve(valve) as orb:
            _serve_counting(
                orb,
                idl,
                [],
                dispatch_policy="concurrent",
                reply_cache_bytes=1 << 20,
            )
            runtime = orb.client_runtime(label="stats")
            try:
                proxy = idl.flaky._bind(
                    "flaky", runtime, ft_policy=RETRYING
                )
                valve.armed = True
                proxy.ping(1.0)
                stats = orb.stats()
            finally:
                runtime.close()
        assert stats["fabric"]["faults"]["drop"] == 1
        assert stats["ft"]["retries"] >= 1
        assert "hits" in stats["transfer_schedule_cache"]
        assert stats["cdr_copies"]["bytes"] >= 0
        assert stats["reply_caches"]["flaky"]["admitted"] >= 1

    def test_snapshot_is_deep_copied_at_the_boundary(self, idl):
        # Regression: stats() must hand back a deep copy.  Poisoning
        # any nested section of a snapshot must not leak into later
        # snapshots, and later ORB activity must not mutate a snapshot
        # already taken.
        valve = Valve("drop", kinds=("request",), limit=1)
        with _orb_with_valve(valve) as orb:
            _serve_counting(orb, idl, [])
            runtime = orb.client_runtime(label="isolated")
            try:
                proxy = idl.flaky._bind(
                    "flaky", runtime, ft_policy=RETRYING
                )
                proxy.ping(1.0)
                before = orb.stats()
                for section in before.values():
                    if isinstance(section, dict):
                        section.clear()
                before["fabric"] = None
                clean = orb.stats()
                assert clean["fabric"]["faults"]["drop"] == 0
                assert "hits" in clean["transfer_schedule_cache"]
                assert clean["ft"] == runtime.ft_stats.snapshot()

                valve.armed = True
                proxy.ping(2.0)  # injects a drop + a retry
                after = orb.stats()
                assert clean["fabric"]["faults"]["drop"] == 0
                assert clean["ft"]["retries"] == 0
                assert after["fabric"]["faults"]["drop"] == 1
                assert after["ft"]["retries"] >= 1
            finally:
                runtime.close()
