"""Unit tests of the QoS policy layer (repro.ft.policy)."""

import pytest

from repro.ft.policy import (
    DeadlineExceeded,
    Failure,
    FtPolicy,
    FtStats,
    InvocationRetriesExhausted,
    effective_policy,
    failure_to_exception,
    reconstruct_error,
)
from repro.orb.operation import RemoteError
from repro.orb.transport import TransportError


class TestValidation:
    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            FtPolicy(deadline_ms=-1)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            FtPolicy(max_retries=-1)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError, match="backoff"):
            FtPolicy(backoff_base_ms=-1)

    def test_policy_is_immutable(self):
        policy = FtPolicy(max_retries=3)
        with pytest.raises(AttributeError):
            policy.max_retries = 5


class TestRetryability:
    def test_timeout_retryable_by_default(self):
        assert FtPolicy().is_retryable(
            Failure("timeout", "TIMEOUT", "late")
        )

    def test_transport_and_unreachable_map_to_comm_failure(self):
        policy = FtPolicy(retryable_categories=("COMM_FAILURE",))
        assert policy.is_retryable(Failure("transport", "X", ""))
        assert policy.is_retryable(Failure("unreachable", "X", ""))
        assert not policy.is_retryable(Failure("timeout", "X", ""))

    def test_remote_failure_uses_its_category(self):
        policy = FtPolicy(retryable_categories=("TRANSIENT",))
        assert policy.is_retryable(
            Failure("remote", "TRANSIENT", "busy")
        )
        assert not policy.is_retryable(
            Failure("remote", "MARSHAL", "bad bytes")
        )


class TestBackoff:
    def test_deterministic_in_request_id_and_attempt(self):
        policy = FtPolicy(backoff_base_ms=10.0)
        a = policy.backoff_seconds(2, request_id=42)
        b = policy.backoff_seconds(2, request_id=42)
        assert a == b
        assert a != policy.backoff_seconds(2, request_id=43)

    def test_exponential_growth_up_to_cap(self):
        policy = FtPolicy(backoff_base_ms=10.0, backoff_cap_ms=35.0)
        # Jitter is in [0.5, 1.0] of the capped raw delay.
        assert 0.005 <= policy.backoff_seconds(1, 7) <= 0.010
        assert 0.010 <= policy.backoff_seconds(2, 7) <= 0.020
        assert 0.0175 <= policy.backoff_seconds(5, 7) <= 0.035

    def test_zero_base_means_no_sleep(self):
        assert FtPolicy(backoff_base_ms=0).backoff_seconds(3, 1) == 0.0


class TestWaitBudget:
    def test_no_deadline_no_timeout_is_unbounded(self):
        assert FtPolicy().wait_budget(None) is None

    def test_budget_covers_all_attempts_and_backoffs(self):
        policy = FtPolicy(
            deadline_ms=1000.0, max_retries=2, backoff_base_ms=100.0
        )
        budget = policy.wait_budget(None)
        # 3 attempts x 1s + backoffs (0.1 + 0.2) + 5s slack.
        assert budget == pytest.approx(3.0 + 0.3 + 5.0)


class TestExceptionMapping:
    def test_timeout_with_no_retries_is_deadline_exceeded(self):
        exc = failure_to_exception(
            Failure("timeout", "TIMEOUT", "late"),
            FtPolicy(deadline_ms=50.0),
            operation="step",
            collective_index=3,
            attempts=0,
        )
        assert isinstance(exc, DeadlineExceeded)
        assert exc.collective_index == 3
        assert exc.category == "TIMEOUT"

    def test_exhausted_deadline_wins_over_retries(self):
        exc = failure_to_exception(
            Failure(
                "timeout", "TIMEOUT", "late", deadline_exhausted=True
            ),
            FtPolicy(deadline_ms=50.0, max_retries=5),
            operation="step",
            collective_index=0,
            attempts=2,
        )
        assert isinstance(exc, DeadlineExceeded)

    def test_retried_transport_failure_is_retries_exhausted(self):
        exc = failure_to_exception(
            Failure("transport", "COMM_FAILURE", "conn reset"),
            FtPolicy(max_retries=2),
            operation="step",
            collective_index=1,
            attempts=2,
        )
        assert isinstance(exc, InvocationRetriesExhausted)
        assert "conn reset" in str(exc)

    def test_reconstruct_remote_and_transport(self):
        remote = reconstruct_error(
            Failure("remote", "MARSHAL", "boom")
        )
        assert isinstance(remote, RemoteError)
        assert remote.category == "MARSHAL"
        wire = reconstruct_error(Failure("transport", "X", "gone"))
        assert isinstance(wire, TransportError)


class TestEffectivePolicy:
    def test_explicit_policy_wins(self):
        class Runtime:
            ft_policy = FtPolicy(max_retries=1)

        explicit = FtPolicy(max_retries=9)
        assert effective_policy(explicit, Runtime()) is explicit

    def test_falls_back_to_runtime_then_none(self):
        class Runtime:
            ft_policy = FtPolicy(max_retries=1)

        assert effective_policy(None, Runtime()).max_retries == 1
        assert effective_policy(None, object()) is None


class TestStats:
    def test_bump_and_snapshot(self):
        stats = FtStats()
        stats.bump("retries")
        stats.bump("retries", 2)
        stats.bump("degraded")
        snap = stats.snapshot()
        assert snap["retries"] == 3
        assert snap["degraded"] == 1
        assert snap["deadline_exceeded"] == 0
