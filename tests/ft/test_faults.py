"""The fault-injection fabric: deterministic schedules, each fault
kind's observable effect on a real in-process fabric."""

import time

import pytest

from repro.ft.faults import FaultSchedule, FaultyFabric
from repro.orb.transport import (
    Fabric,
    KIND_CONTROL,
    KIND_REQUEST,
    TransportError,
)


class TestSchedule:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError, match="drop"):
            FaultSchedule(drop=1.5)
        with pytest.raises(ValueError, match="delay_ms"):
            FaultSchedule(delay_ms=-1)
        with pytest.raises(ValueError, match="start_after"):
            FaultSchedule(start_after=-1)

    def test_same_seed_same_decision_stream(self):
        a = FaultSchedule(seed=5, drop=0.3, duplicate=0.3)
        b = FaultSchedule(seed=5, drop=0.3, duplicate=0.3)
        decisions = [a.decide("request") for _ in range(200)]
        assert decisions == [b.decide("request") for _ in range(200)]
        assert any(decisions)  # at 30% the stream is not all-clean

    def test_different_seed_diverges(self):
        a = FaultSchedule(seed=1, drop=0.5)
        b = FaultSchedule(seed=2, drop=0.5)
        assert [a.decide("request") for _ in range(64)] != [
            b.decide("request") for _ in range(64)
        ]

    def test_unlisted_kind_is_never_faulted(self):
        schedule = FaultSchedule(seed=0, drop=1.0)
        assert schedule.decide("control") == ()

    def test_start_after_exempts_first_sends_keeping_alignment(self):
        grace = FaultSchedule(seed=9, drop=0.4, start_after=10)
        plain = FaultSchedule(seed=9, drop=0.4)
        for _ in range(10):
            assert grace.decide("request") == ()
            plain.decide("request")  # burn the same draws
        # After the grace period the two streams are identical.
        assert [grace.decide("request") for _ in range(50)] == [
            plain.decide("request") for _ in range(50)
        ]


class TestFaultyFabric:
    def _pair(self, schedule):
        fabric = FaultyFabric(Fabric("faults-test"), schedule)
        src = fabric.open_port("src")
        dst = fabric.open_port("dst")
        return fabric, src, dst

    def test_clean_schedule_forwards_everything(self):
        fabric, src, dst = self._pair(FaultSchedule(seed=0))
        src.send(dst.address, b"hello", KIND_REQUEST)
        _src, _kind, payload = dst.recv(timeout=1.0)
        assert bytes(payload) == b"hello"
        assert fabric.fault_stats()["forwarded"] == 1

    def test_drop_loses_the_frame(self):
        fabric, src, dst = self._pair(FaultSchedule(seed=0, drop=1.0))
        src.send(dst.address, b"gone", KIND_REQUEST)
        with pytest.raises(TransportError, match="timed out"):
            dst.recv(timeout=0.05)
        assert fabric.fault_stats()["drop"] == 1

    def test_duplicate_delivers_twice(self):
        _fabric, src, dst = self._pair(
            FaultSchedule(seed=0, duplicate=1.0)
        )
        src.send(dst.address, b"twice", KIND_REQUEST)
        assert bytes(dst.recv(timeout=1.0)[2]) == b"twice"
        assert bytes(dst.recv(timeout=1.0)[2]) == b"twice"

    def test_truncate_shortens_the_frame(self):
        _fabric, src, dst = self._pair(
            FaultSchedule(seed=0, truncate=1.0)
        )
        src.send(dst.address, b"x" * 100, KIND_REQUEST)
        payload = bytes(dst.recv(timeout=1.0)[2])
        assert 0 < len(payload) < 100

    def test_disconnect_raises_at_send(self):
        _fabric, src, dst = self._pair(
            FaultSchedule(seed=0, disconnect=1.0)
        )
        with pytest.raises(TransportError, match="unreachable"):
            src.send(dst.address, b"nope", KIND_REQUEST)

    def test_delay_defers_delivery(self):
        _fabric, src, dst = self._pair(
            FaultSchedule(seed=0, delay=1.0, delay_ms=60.0)
        )
        src.send(dst.address, b"late", KIND_REQUEST)
        start = time.monotonic()
        assert bytes(dst.recv(timeout=2.0)[2]) == b"late"
        assert time.monotonic() - start >= 0.04

    def test_control_frames_pass_untouched_by_default(self):
        _fabric, src, dst = self._pair(FaultSchedule(seed=0, drop=1.0))
        src.send(dst.address, b"shutdown", KIND_CONTROL)
        assert bytes(dst.recv(timeout=1.0)[2]) == b"shutdown"

    def test_delegates_fabric_surface(self):
        inner = Fabric("delegate-test")
        fabric = FaultyFabric(inner, FaultSchedule())
        port = fabric.open_port("p")
        assert fabric.open_port_count() == 1
        assert "FaultyFabric" in repr(fabric)
        port.close()
        assert fabric.open_port_count() == 0
