"""The ISSUE acceptance scenarios: a collective client on a lossy
socket fabric completes 100 invocations with retries (no hang, no
rank divergence), and with retries disabled every rank raises the
identical DeadlineExceeded at the identical collective index."""

import threading

import numpy as np
import pytest

from repro import ORB, FtPolicy, compile_idl
from repro.ft.faults import FaultSchedule, FaultyFabric
from repro.ft.policy import DeadlineExceeded
from repro.orb.naming import NamingService
from repro.orb.socketnet import SocketFabric
from repro.rts.mpi import SUM

COLLECTIVE_IDL = """
typedef dsequence<double, 8192> vec;

interface accum {
    double checksum(in vec data);
};
"""


@pytest.fixture(scope="module")
def idl():
    return compile_idl(COLLECTIVE_IDL, module_name="collective_ft_idl")


def _servant_factory(idl):
    class Accum(idl.accum_skel):
        def checksum(self, data):
            total = data.local_data().sum()
            if self.comm is not None:
                total = self.comm.allreduce(total, op=SUM)
            return float(total)

    return lambda ctx: Accum()


class Valve:
    """Drops the listed frame kinds while armed (deterministic
    alternative to a seeded schedule for the deadline scenario)."""

    def __init__(self, kinds):
        self.kinds = frozenset(kinds)
        self.armed = False

    def decide(self, kind):
        if self.armed and kind in self.kinds:
            return ("drop",)
        return ()


def test_collective_client_completes_100_invocations_at_1pct_loss(idl):
    """Acceptance: seeded 1% frame drop on the client's socket fabric;
    a 2-thread collective client finishes 100 multiport invocations
    with retries, every rank seeing every correct result."""
    schedule = FaultSchedule(seed=1234, drop=0.01)
    naming = NamingService()
    with SocketFabric("ft-acc-server") as sf, \
            SocketFabric("ft-acc-client") as cf:
        faulty = FaultyFabric(cf, schedule)
        server = ORB(
            "ft-acc-server", fabric=sf, naming=naming, timeout=0.5
        )
        client = ORB(
            "ft-acc-client", fabric=faulty, naming=naming, timeout=0.5
        )
        with server, client:
            server.serve(
                "accum",
                _servant_factory(idl),
                nthreads=2,
                reply_cache_bytes=1 << 20,
            )
            policy = FtPolicy(
                max_retries=10, backoff_base_ms=2.0, backoff_cap_ms=20.0
            )
            n = 512

            def run(c):
                proxy = idl.accum._spmd_bind(
                    "accum",
                    c.runtime,
                    transfer="multiport",
                    ft_policy=policy,
                )
                seq = idl.vec.from_global(
                    np.ones(n, dtype=np.float64), comm=c.comm
                )
                return [proxy.checksum(seq) for _ in range(100)]

            results = client.run_spmd_client(2, run, timeout=300.0)
            assert results[0] == results[1] == [float(n)] * 100
            # The seeded schedule injected real faults; if not, this
            # test silently stopped testing the retry path.
            stats = faulty.fault_stats()
            assert stats["drop"] > 0


def test_disabled_retries_raise_identical_deadline_on_all_ranks(idl):
    """Acceptance: retries off, the request path cut — both ranks of
    the collective client raise the same DeadlineExceeded, naming the
    same collective index, after agreeing on the failure."""
    valve = Valve(kinds=("request",))
    naming = NamingService()
    with SocketFabric("ft-dl-server") as sf, \
            SocketFabric("ft-dl-client") as cf:
        faulty = FaultyFabric(cf, valve)
        server = ORB(
            "ft-dl-server", fabric=sf, naming=naming, timeout=0.3
        )
        client = ORB(
            "ft-dl-client", fabric=faulty, naming=naming, timeout=0.3
        )
        with server, client:
            server.serve("accum", _servant_factory(idl), nthreads=1)
            policy = FtPolicy(deadline_ms=300.0, max_retries=0)
            barrier = threading.Barrier(2)
            n = 64

            def run(c):
                proxy = idl.accum._spmd_bind(
                    "accum", c.runtime, ft_policy=policy
                )
                seq = idl.vec.from_global(
                    np.ones(n, dtype=np.float64), comm=c.comm
                )
                for _ in range(3):
                    assert proxy.checksum(seq) == float(n)
                barrier.wait()
                if c.rank == 0:
                    valve.armed = True
                barrier.wait()
                try:
                    proxy.checksum(seq)
                except DeadlineExceeded as exc:
                    return (
                        exc.collective_index,
                        exc.operation,
                        exc.attempts,
                        str(exc),
                    )
                return "no exception raised"

            r0, r1 = client.run_spmd_client(2, run, timeout=120.0)
            assert r0 == r1
            index, operation, attempts, _message = r0
            assert index == 3  # the fourth collective invocation
            assert operation == "checksum"
            assert attempts == 0
