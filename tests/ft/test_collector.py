"""ChunkCollector robustness: duplicated, late and corrupt chunk
frames must be dropped (and counted) without disturbing collection."""

import threading

import pytest

from repro.orb.request import PHASE_REQUEST, DataChunk
from repro.orb.transfer import ChunkCollector, TransportTimeout
from repro.orb.transport import KIND_DATA, Fabric


@pytest.fixture()
def net():
    fabric = Fabric("collector-test")
    sender = fabric.open_port("sender")
    receiver = fabric.open_port("receiver")
    yield sender, receiver
    sender.close()
    receiver.close()


def _chunk(request_id, src_rank, lo, hi, param="x"):
    payload = bytes(8 * (hi - lo))
    return DataChunk(
        request_id=request_id,
        param=param,
        phase=PHASE_REQUEST,
        src_rank=src_rank,
        dst_rank=0,
        global_lo=lo,
        global_hi=hi,
        payload=payload,
    )


def _send(sender, dest, chunk, frame=None):
    sender.send(
        dest, frame if frame is not None else chunk.encode(), KIND_DATA
    )


def test_collect_returns_expected_chunks(net):
    sender, receiver = net
    collector = ChunkCollector(receiver)
    _send(sender, receiver.address, _chunk(1, 0, 0, 4))
    _send(sender, receiver.address, _chunk(1, 1, 4, 8))
    chunks = collector.collect(1, "x", PHASE_REQUEST, 2, timeout=5.0)
    assert sorted(c.global_lo for c in chunks) == [0, 4]
    assert collector.pending_entries() == 0


def test_duplicate_chunk_replaces_instead_of_counting(net):
    # A duplicated frame (fault injection, or a retry re-sending data
    # that already landed) must not satisfy `expected` by itself.
    sender, receiver = net
    collector = ChunkCollector(receiver)
    dup = _chunk(1, 0, 0, 4)
    _send(sender, receiver.address, dup)
    _send(sender, receiver.address, dup)
    with pytest.raises(TransportTimeout):
        collector.collect(1, "x", PHASE_REQUEST, 2, timeout=0.2)
    assert collector.stats()["duplicates_dropped"] == 1

    # With the second distinct chunk present, collection completes and
    # yields one chunk per coordinate.
    _send(sender, receiver.address, dup)
    _send(sender, receiver.address, _chunk(1, 1, 4, 8))
    chunks = collector.collect(1, "x", PHASE_REQUEST, 2, timeout=5.0)
    assert sorted(c.global_lo for c in chunks) == [0, 4]


def test_late_chunk_after_discard_is_dropped(net):
    sender, receiver = net
    collector = ChunkCollector(receiver)
    collector.discard(1)
    _send(sender, receiver.address, _chunk(1, 0, 0, 4))
    _send(sender, receiver.address, _chunk(2, 0, 0, 4))
    # Collecting request 2 pulls both frames off the port; request 1's
    # chunk hits the retired set instead of accumulating.
    chunks = collector.collect(2, "x", PHASE_REQUEST, 1, timeout=5.0)
    assert [c.request_id for c in chunks] == [2]
    assert collector.stats()["late_dropped"] == 1
    assert collector.pending_entries() == 0


def test_discard_evicts_partial_entry(net):
    sender, receiver = net
    collector = ChunkCollector(receiver)
    _send(sender, receiver.address, _chunk(1, 0, 0, 4))
    _send(sender, receiver.address, _chunk(2, 0, 0, 4))
    collector.collect(2, "x", PHASE_REQUEST, 1, timeout=5.0)
    assert collector.pending_entries() == 1  # request 1's stray chunk
    collector.discard(1)
    assert collector.pending_entries() == 0


def test_garbage_frame_is_dropped_not_raised(net):
    sender, receiver = net
    collector = ChunkCollector(receiver)
    good = _chunk(1, 0, 0, 4)
    _send(sender, receiver.address, good, frame=good.encode()[:11])
    _send(sender, receiver.address, good)
    chunks = collector.collect(1, "x", PHASE_REQUEST, 1, timeout=5.0)
    assert len(chunks) == 1
    assert collector.stats()["garbage_dropped"] == 1


def test_failed_collect_evicts_partial_entry(net):
    sender, receiver = net
    collector = ChunkCollector(receiver)
    _send(sender, receiver.address, _chunk(1, 0, 0, 4))
    with pytest.raises(TransportTimeout):
        collector.collect(1, "x", PHASE_REQUEST, 2, timeout=0.2)
    assert collector.pending_entries() == 0


def test_concurrent_collectors_file_for_each_other(net):
    sender, receiver = net
    collector = ChunkCollector(receiver)
    results = {}

    def work(rid):
        results[rid] = collector.collect(
            rid, "x", PHASE_REQUEST, 1, timeout=5.0
        )

    threads = [
        threading.Thread(target=work, args=(rid,)) for rid in (1, 2)
    ]
    for t in threads:
        t.start()
    _send(sender, receiver.address, _chunk(2, 0, 0, 4))
    _send(sender, receiver.address, _chunk(1, 0, 0, 4))
    for t in threads:
        t.join(timeout=10.0)
    assert results[1][0].request_id == 1
    assert results[2][0].request_id == 2
