"""Documentation accuracy checks: every intra-repo markdown link must
resolve, and every ``>>>`` example in docs/*.md must run (doctest), so
the documented APIs cannot silently drift from the code."""

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent

#: Markdown files under version control that we lint for dead links.
MARKDOWN_FILES = sorted(
    path
    for pattern in ("*.md", "docs/*.md", "examples/*.md")
    for path in REPO.glob(pattern)
)

DOC_FILES = sorted(REPO.glob("docs/*.md"))

#: ``[text](target)`` — good enough for our docs (no nested brackets).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Inline/reference targets that are not repo paths.
_EXTERNAL = ("http://", "https://", "mailto:", "#")


def _targets(text):
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        yield target.split("#", 1)[0]


def test_markdown_files_were_found():
    assert any(p.name == "README.md" for p in MARKDOWN_FILES)
    assert DOC_FILES, "docs/*.md missing"


@pytest.mark.parametrize(
    "path", MARKDOWN_FILES, ids=lambda p: str(p.relative_to(REPO))
)
def test_intra_repo_links_resolve(path):
    dead = [
        target
        for target in _targets(path.read_text(encoding="utf-8"))
        if target and not (path.parent / target).exists()
    ]
    assert not dead, f"dead links in {path.name}: {dead}"


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=lambda p: p.name
)
def test_docs_doctest_blocks_run(path):
    # Equivalent to ``python -m doctest docs/<name>.md``: doctest
    # picks up every ``>>>`` example in the file, including those in
    # fenced code blocks.
    failures, tested = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
    )
    assert failures == 0, f"{failures} doctest failure(s) in {path.name}"


def test_observability_doc_has_runnable_examples():
    # The observability guide must actually demonstrate the API, not
    # just describe it: at least one ``>>>`` example is required.
    text = (REPO / "docs" / "observability.md").read_text()
    assert ">>>" in text
