"""Suite-wide fixtures: shm hygiene guard + hypothesis profile.

The process RTS backend (:mod:`repro.rts.procs`) promises that no
shared-memory segment outlives its SPMD group.  The autouse session
fixture below turns that promise into a suite invariant: any
``pardis_shm_*`` / ``psm_*`` name left under ``/dev/shm`` at teardown
fails the run.

The hypothesis profile suppresses the ``differing_executors`` health
check: backend parametrization deliberately runs one ``@given`` test
from several pytest instances (thread and process), which is exactly
the pattern the check flags.
"""

import pytest
from hypothesis import HealthCheck, settings

from repro.rts import shm

settings.register_profile(
    "pardis",
    suppress_health_check=[HealthCheck.differing_executors],
)
settings.load_profile("pardis")


@pytest.fixture(scope="session", autouse=True)
def _no_leaked_shm_segments():
    """No PARDIS shared-memory segment may survive the suite."""
    before = set(shm.leaked_segments())
    yield
    leaked = sorted(set(shm.leaked_segments()) - before)
    assert not leaked, (
        f"shared-memory segments leaked by the suite: {leaked}"
    )
