"""Direct unit tests of the TypeCode layer (validation, metadata)."""

import numpy as np
import pytest

from repro.cdr.typecodes import (
    ArrayTC,
    BasicTC,
    DSequenceTC,
    EnumTC,
    MarshalError,
    SequenceTC,
    StringTC,
    StructTC,
    TC_BOOLEAN,
    TC_CHAR,
    TC_DOUBLE,
    TC_LONG,
    TC_OCTET,
    TC_SHORT,
    TC_STRING,
    TC_ULONG,
    TC_VOID,
    fixed_width,
)


class TestBasicMetadata:
    def test_sizes_and_alignment(self):
        assert TC_SHORT.size == 2 and TC_SHORT.alignment == 2
        assert TC_LONG.size == 4
        assert TC_DOUBLE.size == 8
        assert TC_OCTET.size == 1

    def test_dtypes(self):
        assert TC_LONG.dtype == np.int32
        assert TC_DOUBLE.dtype == np.float64
        assert TC_CHAR.dtype is None  # no bulk fast path

    def test_fixed_width_predicate(self):
        assert fixed_width(TC_DOUBLE)
        assert fixed_width(TC_BOOLEAN)
        assert not fixed_width(TC_STRING)
        assert not fixed_width(StructTC("s", (("x", TC_LONG),)))

    def test_integer_range_validation(self):
        TC_SHORT.validate(-(2**15))
        TC_SHORT.validate(2**15 - 1)
        with pytest.raises(MarshalError):
            TC_SHORT.validate(2**15)
        TC_ULONG.validate(2**32 - 1)
        with pytest.raises(MarshalError):
            TC_ULONG.validate(-1)

    def test_numpy_scalars_validate(self):
        TC_LONG.validate(np.int64(12))
        with pytest.raises(MarshalError):
            TC_LONG.validate(np.int64(2**40))

    def test_float_kinds_skip_range_validation(self):
        TC_DOUBLE.validate(1e308)  # no signedness → no range check

    def test_void_rejects_values(self):
        TC_VOID.validate(None)
        with pytest.raises(MarshalError):
            TC_VOID.validate(0)

    def test_repr_shows_kind(self):
        assert "double" in repr(TC_DOUBLE)
        assert "string" in repr(TC_STRING)


class TestConstructedMetadata:
    def test_string_bound(self):
        StringTC(3).validate("abc")
        with pytest.raises(MarshalError):
            StringTC(3).validate("abcd")
        with pytest.raises(MarshalError):
            TC_STRING.validate(42)

    def test_enum_ordinal_both_ways(self):
        color = EnumTC("c", ("R", "G"))
        assert color.ordinal("G") == 1
        assert color.ordinal(0) == 0
        with pytest.raises(MarshalError):
            color.ordinal("B")
        with pytest.raises(MarshalError):
            color.ordinal(2)
        with pytest.raises(MarshalError):
            color.ordinal(1.5)

    def test_struct_field_validation(self):
        point = StructTC("p", (("x", TC_LONG),))
        point.validate({"x": 1})
        with pytest.raises(MarshalError, match="missing"):
            point.validate({})
        with pytest.raises(MarshalError, match="unknown"):
            point.validate({"x": 1, "q": 2})

    def test_sequence_bound(self):
        seq = SequenceTC(TC_LONG, bound=2)
        seq.validate([1, 2])
        with pytest.raises(MarshalError):
            seq.validate([1, 2, 3])
        with pytest.raises(MarshalError):
            seq.validate(5)  # not sized

    def test_array_exact_length(self):
        arr = ArrayTC(TC_LONG, 3)
        arr.validate([1, 2, 3])
        with pytest.raises(MarshalError):
            arr.validate([1])

    def test_dsequence_metadata(self):
        ds = DSequenceTC(TC_DOUBLE, 128, ("proportions", (1, 2)))
        assert ds.element_dtype == np.float64
        assert ds.bound == 128
        assert ds.template == ("proportions", (1, 2))

    def test_dsequence_validates_length_and_shape(self):
        from repro.dist import DistributedSequence

        ds = DSequenceTC(TC_DOUBLE, bound=4)
        ds.validate(DistributedSequence(4))
        with pytest.raises(MarshalError):
            ds.validate(DistributedSequence(5, bound=None))
        with pytest.raises(MarshalError):
            ds.validate([1.0, 2.0])  # not sequence-like

    def test_custom_basic_tc_defaults(self):
        # The keyword-constructed defaults exist only so dataclass
        # inheritance works; a bare BasicTC is an octet-shaped cell.
        cell = BasicTC()
        assert cell.size == 1
