"""Zero-copy CDR contract tests.

Three guarantees of the buffer-view pipeline:

1. cross-endian streams still roundtrip for every numeric typecode
   (the one place a copy is *required*);
2. decoder views are read-only and cannot corrupt — or be corrupted
   through — a reused receive buffer (mutation-safety contract);
3. the copy audit observes exactly the copies the design admits.
"""

import numpy as np
import pytest

from repro.cdr import (
    CdrDecoder,
    CdrEncoder,
    MarshalError,
    SequenceTC,
    TC_BOOLEAN,
    TC_DOUBLE,
    TC_FLOAT,
    TC_LONG,
    TC_LONGLONG,
    TC_OCTET,
    TC_SHORT,
    TC_ULONG,
    TC_ULONGLONG,
    TC_USHORT,
    copy_audit,
    decode_value,
    encode_value,
)

NUMERIC_TCS = [
    TC_OCTET,
    TC_SHORT,
    TC_USHORT,
    TC_LONG,
    TC_ULONG,
    TC_LONGLONG,
    TC_ULONGLONG,
    TC_FLOAT,
    TC_DOUBLE,
    TC_BOOLEAN,
]


def _sample(element) -> np.ndarray:
    dtype = element.dtype
    if element.kind == "boolean":
        return np.array([True, False, True, True, False])
    if np.issubdtype(dtype, np.floating):
        return np.linspace(-8, 8, 17).astype(dtype)
    info = np.iinfo(dtype)
    return np.array(
        [info.min, 0, 1, 7, info.max], dtype=dtype
    )


class TestCrossEndianRoundtrip:
    """Every numeric element type survives a foreign-endian stream."""

    @pytest.mark.parametrize(
        "element", NUMERIC_TCS, ids=lambda tc: tc.kind
    )
    @pytest.mark.parametrize("little", [True, False], ids=["le", "be"])
    def test_roundtrip(self, element, little):
        seq_tc = SequenceTC(element)
        data = _sample(element)
        enc = CdrEncoder(little_endian=little)
        enc.write(seq_tc, data)
        result = CdrDecoder(enc.getvalue()).read(seq_tc)
        np.testing.assert_array_equal(result, data)

    @pytest.mark.parametrize(
        "element", NUMERIC_TCS, ids=lambda tc: tc.kind
    )
    def test_segments_equal_getvalue(self, element):
        """The segment list is byte-identical to the flat stream —
        the wire format did not change."""
        data = _sample(element)
        seq_tc = SequenceTC(element)
        enc_a = CdrEncoder(little_endian=True)
        enc_a.write(seq_tc, data)
        enc_b = CdrEncoder(little_endian=True)
        enc_b.write(seq_tc, data)
        joined = b"".join(bytes(s) for s in enc_b.segments())
        assert enc_a.getvalue() == joined


class TestMutationSafety:
    """Decoder views must not be able to corrupt a reused buffer."""

    def test_decoded_array_is_readonly_view(self):
        seq_tc = SequenceTC(TC_DOUBLE)
        data = np.arange(64.0)
        stream = encode_value(seq_tc, data)
        result = decode_value(seq_tc, stream)
        assert result.base is not None  # a view, not a copy
        assert not result.flags.writeable
        with pytest.raises(ValueError):
            result[0] = 99.0

    def test_read_octets_view_is_readonly(self):
        enc = CdrEncoder()
        enc.write_octets(b"payload-bytes")
        dec = CdrDecoder(enc.getvalue())
        view = dec.read_octets(13)
        assert isinstance(view, memoryview)
        assert view.readonly

    def test_view_over_reused_receive_buffer(self):
        """The transport contract: a view pins the buffer, and
        because it is read-only, user code cannot scribble into bytes
        a later frame will land on."""
        seq_tc = SequenceTC(TC_LONG)
        buf = bytearray(encode_value(seq_tc, np.arange(8, dtype=np.int32)))
        result = decode_value(seq_tc, buf)
        # The view aliases the buffer: a transport that recycled it
        # in place would be visible through the view...
        with pytest.raises(ValueError):
            result[:] = 0  # ...but the view can never corrupt it.
        assert not result.flags.writeable

    def test_copy_arrays_escape_hatch_is_writable(self):
        seq_tc = SequenceTC(TC_DOUBLE)
        data = np.arange(16.0)
        stream = encode_value(seq_tc, data)
        result = decode_value(seq_tc, stream, copy_arrays=True)
        assert result.flags.writeable
        result[0] = -1.0  # must not raise
        # and it is detached from the stream:
        fresh = decode_value(seq_tc, stream)
        assert fresh[0] == 0.0

    def test_cross_endian_arrays_are_fresh(self):
        """The byteswap path materializes; the result must not alias
        the stream even without copy_arrays."""
        seq_tc = SequenceTC(TC_DOUBLE)
        enc = CdrEncoder(little_endian=False)
        enc.write(seq_tc, np.arange(4.0))
        stream = enc.getvalue()
        dec = CdrDecoder(stream)
        if dec.little_endian:  # platform is big-endian: skip
            pytest.skip("needs a foreign-endian stream")
        result = dec.read(seq_tc)
        np.testing.assert_array_equal(result, np.arange(4.0))


class TestBooleanValidation:
    def test_accepts_bool_and_01(self):
        enc = CdrEncoder()
        enc.write_boolean(True)
        enc.write_boolean(False)
        enc.write_boolean(np.bool_(True))
        enc.write_boolean(1)
        enc.write_boolean(0)
        dec = CdrDecoder(enc.getvalue())
        assert [dec.read_boolean() for _ in range(5)] == [
            True,
            False,
            True,
            True,
            False,
        ]

    @pytest.mark.parametrize("bad", [2, -1, "yes", 1.0, None, b"\x01"])
    def test_rejects_non_boolean(self, bad):
        enc = CdrEncoder()
        with pytest.raises(MarshalError):
            enc.write_boolean(bad)


class TestCopyAccounting:
    def test_large_array_encodes_without_payload_copy(self):
        seq_tc = SequenceTC(TC_DOUBLE)
        data = np.arange(1 << 16, dtype=np.float64)  # 512 KiB
        with copy_audit() as account:
            enc = CdrEncoder()
            enc.write(seq_tc, data)
            segments = enc.segments()
        copied_bytes, _ = account.snapshot()
        assert copied_bytes < data.nbytes // 8  # headers only
        # ... and the array itself rides as a borrowed segment:
        assert any(
            isinstance(s, memoryview) and len(s) == data.nbytes
            for s in segments
        )

    def test_decode_views_cost_nothing(self):
        seq_tc = SequenceTC(TC_DOUBLE)
        data = np.arange(1 << 15, dtype=np.float64)
        stream = encode_value(seq_tc, data)
        with copy_audit() as account:
            result = decode_value(seq_tc, stream)
        copied_bytes, _ = account.snapshot()
        assert copied_bytes == 0
        np.testing.assert_array_equal(result, data)

    def test_getvalue_flatten_is_accounted(self):
        seq_tc = SequenceTC(TC_DOUBLE)
        data = np.arange(4096, dtype=np.float64)
        enc = CdrEncoder()
        enc.write(seq_tc, data)
        with copy_audit() as account:
            flat = enc.getvalue()
        copied_bytes, _ = account.snapshot()
        assert copied_bytes >= len(flat)
