"""CDR encode/decode roundtrip tests, including property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdr import (
    ArrayTC,
    CdrDecoder,
    CdrEncoder,
    DSequenceTC,
    EnumTC,
    ExceptionTC,
    MarshalError,
    ObjRefTC,
    SequenceTC,
    StructTC,
    TC_BOOLEAN,
    TC_CHAR,
    TC_DOUBLE,
    TC_FLOAT,
    TC_LONG,
    TC_LONGLONG,
    TC_OCTET,
    TC_SHORT,
    TC_STRING,
    TC_ULONG,
    TC_ULONGLONG,
    TC_USHORT,
    TC_VOID,
    decode_value,
    encode_value,
)
from repro.cdr.typecodes import StringTC


def roundtrip(typecode, value):
    return decode_value(typecode, encode_value(typecode, value))


class TestBasicTypes:
    @pytest.mark.parametrize(
        "typecode,value",
        [
            (TC_SHORT, -1234),
            (TC_USHORT, 65535),
            (TC_LONG, -(2**31)),
            (TC_ULONG, 2**32 - 1),
            (TC_LONGLONG, -(2**63)),
            (TC_ULONGLONG, 2**64 - 1),
            (TC_OCTET, 200),
        ],
    )
    def test_integer_roundtrip(self, typecode, value):
        assert roundtrip(typecode, value) == value

    def test_float_roundtrip(self):
        assert roundtrip(TC_DOUBLE, 3.141592653589793) == 3.141592653589793
        assert roundtrip(TC_FLOAT, 0.5) == 0.5

    def test_boolean_roundtrip(self):
        assert roundtrip(TC_BOOLEAN, True) is True
        assert roundtrip(TC_BOOLEAN, False) is False

    def test_char_roundtrip(self):
        assert roundtrip(TC_CHAR, "x") == "x"

    def test_void(self):
        assert roundtrip(TC_VOID, None) is None
        with pytest.raises(MarshalError):
            encode_value(TC_VOID, 5)

    @pytest.mark.parametrize(
        "typecode,value",
        [
            (TC_SHORT, 2**15),
            (TC_USHORT, -1),
            (TC_LONG, 2**31),
            (TC_ULONG, -1),
            (TC_OCTET, 256),
        ],
    )
    def test_range_validation(self, typecode, value):
        with pytest.raises(MarshalError):
            encode_value(typecode, value)

    def test_non_integer_rejected(self):
        with pytest.raises(MarshalError):
            encode_value(TC_LONG, "five")

    def test_numpy_scalars_accepted(self):
        assert roundtrip(TC_LONG, np.int32(-7)) == -7
        assert roundtrip(TC_DOUBLE, np.float64(2.5)) == 2.5


class TestStrings:
    def test_roundtrip(self):
        assert roundtrip(TC_STRING, "hello world") == "hello world"

    def test_empty_string(self):
        assert roundtrip(TC_STRING, "") == ""

    def test_unicode(self):
        assert roundtrip(TC_STRING, "café ∞") == "café ∞"

    def test_bounded_string_enforced(self):
        bounded = StringTC(bound=4)
        assert roundtrip(bounded, "abcd") == "abcd"
        with pytest.raises(MarshalError):
            encode_value(bounded, "abcde")

    def test_non_string_rejected(self):
        with pytest.raises(MarshalError):
            encode_value(TC_STRING, 42)


class TestAlignment:
    def test_primitives_are_naturally_aligned(self):
        enc = CdrEncoder()
        enc.write(TC_OCTET, 1)  # offset 1 (after flag)
        enc.write(TC_DOUBLE, 2.0)  # must align to 8
        data = enc.getvalue()
        assert len(data) == 16
        dec = CdrDecoder(data)
        assert dec.read(TC_OCTET) == 1
        assert dec.read(TC_DOUBLE) == 2.0

    def test_mixed_stream(self):
        enc = CdrEncoder()
        parts = [
            (TC_BOOLEAN, True),
            (TC_SHORT, -3),
            (TC_OCTET, 9),
            (TC_LONG, 100000),
            (TC_STRING, "mid"),
            (TC_DOUBLE, -0.25),
        ]
        for typecode, value in parts:
            enc.write(typecode, value)
        dec = CdrDecoder(enc.getvalue())
        for typecode, value in parts:
            assert dec.read(typecode) == value
        assert dec.at_end()


class TestEndianness:
    def test_big_endian_stream_decodes(self):
        enc = CdrEncoder(little_endian=False)
        enc.write(TC_LONG, 0x01020304)
        enc.write(TC_DOUBLE, 1.5)
        enc.write(TC_STRING, "be")
        dec = CdrDecoder(enc.getvalue())
        assert not dec.little_endian
        assert dec.read(TC_LONG) == 0x01020304
        assert dec.read(TC_DOUBLE) == 1.5
        assert dec.read(TC_STRING) == "be"

    def test_big_endian_numeric_sequence(self):
        seq_tc = SequenceTC(TC_DOUBLE)
        enc = CdrEncoder(little_endian=False)
        enc.write(seq_tc, np.arange(5.0))
        result = CdrDecoder(enc.getvalue()).read(seq_tc)
        np.testing.assert_array_equal(result, np.arange(5.0))

    def test_flag_octet_leads_stream(self):
        assert CdrEncoder(little_endian=True).getvalue() == b"\x01"
        assert CdrEncoder(little_endian=False).getvalue() == b"\x00"


class TestConstructedTypes:
    def test_enum(self):
        color = EnumTC("Color", ("RED", "GREEN", "BLUE"))
        assert roundtrip(color, "GREEN") == "GREEN"
        assert roundtrip(color, 2) == "BLUE"
        with pytest.raises(MarshalError):
            encode_value(color, "PURPLE")
        with pytest.raises(MarshalError):
            encode_value(color, 3)

    def test_enum_duplicate_members_rejected(self):
        with pytest.raises(MarshalError):
            EnumTC("Bad", ("A", "A"))

    def test_struct(self):
        point = StructTC("Point", (("x", TC_DOUBLE), ("y", TC_DOUBLE)))
        assert roundtrip(point, {"x": 1.0, "y": -2.0}) == {
            "x": 1.0,
            "y": -2.0,
        }

    def test_struct_validation(self):
        point = StructTC("Point", (("x", TC_DOUBLE),))
        with pytest.raises(MarshalError):
            encode_value(point, {"y": 1.0})
        with pytest.raises(MarshalError):
            encode_value(point, {"x": 1.0, "z": 2.0})
        with pytest.raises(MarshalError):
            encode_value(point, [1.0])

    def test_nested_struct(self):
        inner = StructTC("Inner", (("n", TC_LONG),))
        outer = StructTC(
            "Outer", (("name", TC_STRING), ("inner", inner))
        )
        value = {"name": "deep", "inner": {"n": 12}}
        assert roundtrip(outer, value) == value

    def test_sequence_of_double_fast_path(self):
        seq_tc = SequenceTC(TC_DOUBLE)
        data = np.linspace(0, 1, 100)
        np.testing.assert_array_equal(roundtrip(seq_tc, data), data)

    def test_sequence_of_struct(self):
        point = StructTC("Point", (("x", TC_DOUBLE),))
        seq_tc = SequenceTC(point)
        value = [{"x": 1.0}, {"x": 2.0}]
        assert roundtrip(seq_tc, value) == value

    def test_bounded_sequence(self):
        seq_tc = SequenceTC(TC_LONG, bound=3)
        with pytest.raises(MarshalError):
            encode_value(seq_tc, [1, 2, 3, 4])

    def test_empty_sequence(self):
        seq_tc = SequenceTC(TC_DOUBLE)
        assert len(roundtrip(seq_tc, np.zeros(0))) == 0

    def test_array_fixed_length(self):
        arr_tc = ArrayTC(TC_LONG, 4)
        result = roundtrip(arr_tc, [1, 2, 3, 4])
        np.testing.assert_array_equal(result, [1, 2, 3, 4])
        with pytest.raises(MarshalError):
            encode_value(arr_tc, [1, 2])

    def test_sequence_of_boolean(self):
        seq_tc = SequenceTC(TC_BOOLEAN)
        result = roundtrip(seq_tc, [True, False, True])
        np.testing.assert_array_equal(result, [True, False, True])

    def test_objref_as_ior_string(self):
        ref_tc = ObjRefTC("diff_object")
        assert roundtrip(ref_tc, "IOR:example:0") == "IOR:example:0"

    def test_exception_roundtrip(self):
        exc_tc = ExceptionTC(
            "BadStep", "IDL:BadStep:1.0", (("step", TC_LONG),)
        )
        assert roundtrip(exc_tc, {"step": 7}) == {"step": 7}

    def test_exception_id_mismatch(self):
        good = ExceptionTC("A", "IDL:A:1.0", ())
        bad = ExceptionTC("B", "IDL:B:1.0", ())
        data = encode_value(good, {})
        with pytest.raises(MarshalError):
            decode_value(bad, data)


class TestDSequence:
    def test_requires_numeric_element(self):
        with pytest.raises(MarshalError):
            DSequenceTC(TC_STRING)

    def test_materialized_roundtrip(self):
        ds_tc = DSequenceTC(TC_DOUBLE, bound=1024)
        data = np.arange(100, dtype=np.float64)
        np.testing.assert_array_equal(roundtrip(ds_tc, data), data)

    def test_bound_enforced_both_ways(self):
        ds_tc = DSequenceTC(TC_DOUBLE, bound=4)
        with pytest.raises(MarshalError):
            encode_value(ds_tc, np.zeros(5))
        loose = DSequenceTC(TC_DOUBLE)
        data = encode_value(loose, np.zeros(5))
        with pytest.raises(MarshalError):
            decode_value(ds_tc, data)

    def test_distributed_value_must_be_gathered_first(self):
        from repro.dist import DistributedSequence
        from repro.rts import spmd_run

        ds_tc = DSequenceTC(TC_DOUBLE)

        def body(ctx):
            seq = DistributedSequence(8, comm=ctx.comm)
            with pytest.raises(MarshalError):
                encode_value(ds_tc, seq)
            return True

        assert all(spmd_run(2, body))

    def test_serial_sequence_encodes_inline(self):
        from repro.dist import DistributedSequence

        ds_tc = DSequenceTC(TC_DOUBLE)
        seq = DistributedSequence.from_global(np.arange(6, dtype=np.float64))
        np.testing.assert_array_equal(
            roundtrip(ds_tc, seq), np.arange(6.0)
        )


class TestErrorPaths:
    def test_truncated_stream(self):
        data = encode_value(TC_DOUBLE, 1.0)[:-2]
        with pytest.raises(MarshalError):
            decode_value(TC_DOUBLE, data)

    def test_empty_stream(self):
        with pytest.raises(MarshalError):
            CdrDecoder(b"")

    def test_zero_length_string_prefix(self):
        enc = CdrEncoder()
        enc.write_ulong(0)
        with pytest.raises(MarshalError):
            CdrDecoder(enc.getvalue()).read_string()


class TestProperties:
    @given(st.integers(-(2**31), 2**31 - 1))
    def test_long_roundtrip(self, value):
        assert roundtrip(TC_LONG, value) == value

    @given(
        st.floats(allow_nan=False, allow_infinity=True, width=64)
    )
    def test_double_roundtrip(self, value):
        assert roundtrip(TC_DOUBLE, value) == value

    @given(st.text(max_size=200))
    def test_string_roundtrip(self, value):
        assert roundtrip(TC_STRING, value) == value

    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            max_size=50,
        ),
        st.booleans(),
    )
    @settings(max_examples=100)
    def test_double_sequence_roundtrip_any_endianness(self, values, little):
        seq_tc = SequenceTC(TC_DOUBLE)
        enc = CdrEncoder(little_endian=little)
        enc.write(seq_tc, np.asarray(values, dtype=np.float64))
        result = CdrDecoder(enc.getvalue()).read(seq_tc)
        np.testing.assert_array_equal(
            result, np.asarray(values, dtype=np.float64)
        )

    @given(
        st.lists(st.integers(0, 2**16 - 1), max_size=30),
        st.lists(st.text(max_size=10), max_size=10),
    )
    @settings(max_examples=50)
    def test_heterogeneous_struct_roundtrip(self, numbers, words):
        record = StructTC(
            "Record",
            (
                ("numbers", SequenceTC(TC_USHORT)),
                ("words", SequenceTC(TC_STRING)),
            ),
        )
        value = {"numbers": numbers, "words": words}
        result = roundtrip(record, value)
        assert list(result["numbers"]) == numbers
        assert result["words"] == words

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=100)
    def test_decoder_never_crashes_unsafely(self, junk):
        """Arbitrary bytes must raise MarshalError or decode — never
        escape with an unrelated exception type."""
        record = StructTC(
            "R",
            (("s", TC_STRING), ("xs", SequenceTC(TC_DOUBLE))),
        )
        try:
            decode_value(record, junk)
        except MarshalError:
            pass
        except (UnicodeDecodeError, MemoryError):
            # Tolerated: bogus length prefixes can request huge reads
            # (caught as MarshalError) or invalid UTF-8.
            pass
