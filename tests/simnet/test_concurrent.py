"""Unit tests for the concurrent-client contention model."""

import pytest

from repro.simnet import (
    paper_testbed,
    simulate_centralized,
    simulate_concurrent,
    simulate_multiport,
)
from repro.simnet.calibration import PAPER_SEQUENCE_BYTES


@pytest.fixture(scope="module")
def cfg():
    return paper_testbed()


class TestConcurrentModel:
    def test_rejects_bad_inputs(self, cfg):
        with pytest.raises(ValueError, match="unknown method"):
            simulate_concurrent(cfg, "postal", 1, 1, 1, 800)
        with pytest.raises(ValueError, match="at least one"):
            simulate_concurrent(cfg, "multiport", 0, 1, 1, 800)

    def test_single_burst_matches_solo(self, cfg):
        burst = simulate_concurrent(
            cfg, "centralized", 1, 4, 8, PAPER_SEQUENCE_BYTES
        )
        solo = simulate_centralized(cfg, 4, 8, PAPER_SEQUENCE_BYTES)
        assert burst.makespan == pytest.approx(solo.t_inv, rel=0.02)
        mp_burst = simulate_concurrent(
            cfg, "multiport", 1, 4, 8, PAPER_SEQUENCE_BYTES
        )
        mp_solo = simulate_multiport(cfg, 4, 8, PAPER_SEQUENCE_BYTES)
        assert mp_burst.makespan == pytest.approx(mp_solo.t_inv, rel=0.05)

    def test_makespan_grows_sublinearly(self, cfg):
        """Pipelining: k requests take far less than k times one."""
        for method in ("centralized", "multiport"):
            one = simulate_concurrent(
                cfg, method, 1, 4, 8, PAPER_SEQUENCE_BYTES
            ).makespan
            four = simulate_concurrent(
                cfg, method, 4, 4, 8, PAPER_SEQUENCE_BYTES
            ).makespan
            assert one < four < 4 * one

    def test_mean_latency_at_most_makespan(self, cfg):
        result = simulate_concurrent(
            cfg, "multiport", 4, 4, 8, PAPER_SEQUENCE_BYTES
        )
        assert result.mean_latency <= result.makespan

    def test_aggregate_bandwidth_bounded_by_link(self, cfg):
        for k in (1, 2, 8):
            result = simulate_concurrent(
                cfg, "multiport", k, 4, 8, PAPER_SEQUENCE_BYTES
            )
            assert result.aggregate_bandwidth <= cfg.link_bandwidth

    def test_deterministic(self, cfg):
        a = simulate_concurrent(cfg, "multiport", 3, 2, 4, 10**6)
        b = simulate_concurrent(cfg, "multiport", 3, 2, 4, 10**6)
        assert a == b
