"""Machine model and invocation-model tests, including the qualitative
claims the paper's evaluation rests on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import Proportions
from repro.simnet import (
    MachineModel,
    paper_testbed,
    simulate_centralized,
    simulate_multiport,
)
from repro.simnet.calibration import PAPER_SEQUENCE_BYTES

MB = 1024 * 1024


@pytest.fixture(scope="module")
def cfg():
    return paper_testbed()


class TestMachineModel:
    def machine(self, **kw):
        defaults = dict(
            name="m",
            ncpus=4,
            mem_bandwidth=100.0,
            pack_bandwidth=200.0,
            unpack_bandwidth=400.0,
            stall_base=2.0,
            stall_scale=1.0,
        )
        defaults.update(kw)
        return MachineModel(**defaults)

    def test_stall_grows_and_saturates(self):
        m = self.machine()
        assert m.stall(1) == 2.0
        assert m.stall(2) == 2.5
        assert m.stall(4) == 2.75
        assert m.stall(1000) == pytest.approx(3.0, abs=0.01)

    def test_stall_requires_thread(self):
        with pytest.raises(ValueError):
            self.machine().stall(0)

    def test_cost_rates(self):
        m = self.machine()
        assert m.pack_time(200 * MB) == pytest.approx(1000.0)
        assert m.unpack_time(400 * MB) == pytest.approx(1000.0)
        assert m.copy_time(100 * MB) == pytest.approx(1000.0)

    def test_gather_time_counts_chunks(self):
        m = self.machine(message_overhead=1.0)
        t = m.gather_time([100 * MB, 100 * MB])
        assert t == pytest.approx(2 * 1000.0 + 2 * 1.0)
        assert m.gather_time([]) == 0.0

    def test_scatter_mirrors_gather(self):
        m = self.machine()
        chunks = [10 * MB, 20 * MB]
        assert m.scatter_time(chunks) == m.gather_time(chunks)


class TestPairStall:
    def test_ablation_switch_zeroes_stall(self, cfg):
        assert cfg.pair_stall(4, 8) > 0
        assert cfg.without_scheduler().pair_stall(4, 8) == 0.0

    def test_multiport_damping(self, cfg):
        assert cfg.pair_stall(4, 8, multiport=True) < cfg.pair_stall(
            4, 8, multiport=False
        )
        # Base stall is never damped.
        assert cfg.pair_stall(1, 1, multiport=True) == pytest.approx(
            cfg.pair_stall(1, 1, multiport=False)
        )

    def test_interaction_term(self, cfg):
        solo = (
            cfg.pair_stall(4, 1) - cfg.pair_stall(1, 1)
        ) + (cfg.pair_stall(1, 8) - cfg.pair_stall(1, 1))
        joint = cfg.pair_stall(4, 8) - cfg.pair_stall(1, 1)
        assert joint > solo  # compounding, not additive


class TestCentralizedClaims:
    """Qualitative shape of Table 1."""

    def test_time_grows_with_server_threads(self, cfg):
        times = [
            simulate_centralized(cfg, 1, s, PAPER_SEQUENCE_BYTES).t_inv
            for s in (1, 2, 4, 8)
        ]
        assert times == sorted(times)
        assert times[-1] > times[0]

    def test_time_grows_with_client_threads(self, cfg):
        times = [
            simulate_centralized(cfg, c, 8, PAPER_SEQUENCE_BYTES).t_inv
            for c in (1, 2, 4)
        ]
        assert times == sorted(times)

    def test_scatter_grows_with_server_threads(self, cfg):
        scatters = [
            simulate_centralized(cfg, 1, s, PAPER_SEQUENCE_BYTES).t_scatter
            for s in (1, 2, 4, 8)
        ]
        assert scatters[0] == 0.0
        assert scatters == sorted(scatters)

    def test_gather_depends_only_on_client(self, cfg):
        a = simulate_centralized(cfg, 4, 1, PAPER_SEQUENCE_BYTES)
        b = simulate_centralized(cfg, 4, 8, PAPER_SEQUENCE_BYTES)
        assert a.t_gather == pytest.approx(b.t_gather)
        assert a.t_gather > 0

    def test_component_sum_accounts_for_total(self, cfg):
        b = simulate_centralized(cfg, 4, 8, PAPER_SEQUENCE_BYTES)
        parts = (
            b.t_gather + b.t_pack_send + b.t_recv + b.t_scatter
        )
        assert parts <= b.t_inv
        assert b.t_inv - parts < 20.0  # only reply + fixed overhead


class TestMultiPortClaims:
    """Qualitative shape of Table 2 and §3.3's analysis."""

    def test_time_decreases_with_client_threads(self, cfg):
        times = [
            simulate_multiport(cfg, c, 8, PAPER_SEQUENCE_BYTES).t_inv
            for c in (1, 2, 4)
        ]
        assert times == sorted(times, reverse=True)

    def test_pack_time_shrinks_with_client_threads(self, cfg):
        packs = [
            simulate_multiport(cfg, c, 4, PAPER_SEQUENCE_BYTES).t_pack
            for c in (1, 2, 4)
        ]
        assert packs == sorted(packs, reverse=True)

    def test_unpack_shrinks_with_server_threads(self, cfg):
        unpacks = [
            simulate_multiport(cfg, 2, s, PAPER_SEQUENCE_BYTES).t_recv_unpack
            for s in (1, 2, 4, 8)
        ]
        assert unpacks == sorted(unpacks, reverse=True)

    def test_barrier_reflects_sequentialized_sends(self, cfg):
        """§3.3: with one client thread and two server threads, the
        sends are sequentialized — the first server thread waits in
        the exit barrier for roughly half the send time."""
        b = simulate_multiport(cfg, 1, 2, PAPER_SEQUENCE_BYTES)
        assert b.t_barrier == pytest.approx(b.t_send / 2, rel=0.15)

    def test_barrier_small_when_symmetric(self, cfg):
        asym = simulate_multiport(cfg, 1, 8, PAPER_SEQUENCE_BYTES)
        sym = simulate_multiport(cfg, 4, 4, PAPER_SEQUENCE_BYTES)
        assert sym.t_barrier < asym.t_barrier / 10

    def test_link_utilization_improves_with_threads(self, cfg):
        u1 = simulate_multiport(cfg, 1, 1, PAPER_SEQUENCE_BYTES)
        u4 = simulate_multiport(cfg, 4, 8, PAPER_SEQUENCE_BYTES)
        assert u4.link_utilization > u1.link_utilization

    def test_never_slower_than_centralized(self, cfg):
        """'We have not found a case in which it would underperform
        the centralized method' — for large arguments."""
        for c in (1, 2, 4):
            for s in (1, 2, 4, 8):
                mp = simulate_multiport(cfg, c, s, PAPER_SEQUENCE_BYTES)
                ct = simulate_centralized(cfg, c, s, PAPER_SEQUENCE_BYTES)
                assert mp.t_inv <= ct.t_inv * 1.02

    def test_uneven_split_is_comparable(self, cfg):
        """§3.3: 'cases when the sequence is split unevenly are of
        comparable efficiency'."""
        even = simulate_multiport(cfg, 4, 8, PAPER_SEQUENCE_BYTES)
        uneven = simulate_multiport(
            cfg,
            4,
            8,
            PAPER_SEQUENCE_BYTES,
            client_template=Proportions(7, 1, 9, 3),
        )
        assert uneven.t_inv <= even.t_inv * 1.45

    def test_schedule_matches_functional_plane(self, cfg):
        """The simulated chunk pattern is the real engine's pattern:
        both derive from transfer_schedule."""
        from repro.dist import BlockTemplate, transfer_schedule

        n = 120 * 8
        client_layout = BlockTemplate().layout(120, 3)
        server_layout = BlockTemplate().layout(120, 4)
        steps = transfer_schedule(client_layout, server_layout)
        pairs = {(s.src_rank, s.dst_rank) for s in steps}
        assert pairs == {
            (0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3),
        }
        # And the simulation runs it without error.
        b = simulate_multiport(cfg, 3, 4, n)
        assert b.t_inv > 0


class TestFigure4Claims:
    def test_methods_comparable_at_small_sizes(self, cfg):
        small = 10 * 8
        ct = simulate_centralized(cfg, 4, 8, small)
        mp = simulate_multiport(cfg, 4, 8, small)
        assert abs(ct.t_inv - mp.t_inv) < max(ct.t_inv, mp.t_inv) * 0.5

    def test_multiport_wins_big_at_large_sizes(self, cfg):
        big = 10**6 * 8
        ct = simulate_centralized(cfg, 4, 8, big)
        mp = simulate_multiport(cfg, 4, 8, big)
        assert mp.effective_bandwidth > 1.8 * ct.effective_bandwidth

    def test_bandwidth_monotone_then_saturating(self, cfg):
        bws = [
            simulate_multiport(cfg, 4, 8, 10**e * 8).effective_bandwidth
            for e in range(1, 8)
        ]
        assert bws == sorted(bws)
        assert bws[-1] / bws[-2] < 1.1  # saturated

    @given(
        nbytes=st.integers(80, 10**6),
        nclient=st.integers(1, 4),
        nserver=st.integers(1, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_simulations_always_terminate_positive(
        self, nbytes, nclient, nserver
    ):
        cfg = paper_testbed()
        nbytes = (nbytes // 8) * 8
        ct = simulate_centralized(cfg, nclient, nserver, nbytes)
        mp = simulate_multiport(cfg, nclient, nserver, nbytes)
        assert ct.t_inv > 0 and mp.t_inv > 0
        assert ct.t_gather >= 0 and mp.t_barrier >= 0


class TestCalibrationRegression:
    """Guard the calibrated fit against the paper's headline numbers.

    Tolerances are deliberately loose (the model is a reconstruction)
    but tight enough that a units or logic regression trips them.
    """

    def test_table1_client1_row(self, cfg):
        paper = {1: 417.0, 2: 442.0, 4: 451.0, 8: 461.0}
        for s, expected in paper.items():
            got = simulate_centralized(cfg, 1, s, PAPER_SEQUENCE_BYTES).t_inv
            assert got == pytest.approx(expected, rel=0.10)

    def test_table1_client4_row(self, cfg):
        paper = {1: 571.0, 2: 634.0, 4: 685.0, 8: 697.0}
        for s, expected in paper.items():
            got = simulate_centralized(cfg, 4, s, PAPER_SEQUENCE_BYTES).t_inv
            assert got == pytest.approx(expected, rel=0.10)

    def test_figure4_centralized_peak(self, cfg):
        bw = max(
            simulate_centralized(
                cfg, 4, 8, 10**e * 8
            ).effective_bandwidth
            for e in range(1, 8)
        )
        assert bw == pytest.approx(12.27, rel=0.15)

    def test_figure4_multiport_peak(self, cfg):
        bw = max(
            simulate_multiport(
                cfg, 4, 8, 10**e * 8
            ).effective_bandwidth
            for e in range(1, 8)
        )
        assert bw == pytest.approx(26.7, rel=0.20)

    def test_table2_barrier_column_shape(self, cfg):
        """Paper: barrier ~0 when client threads >= server threads,
        then grows (0.03 / 165-307 ms pattern)."""
        for c in (1, 2, 4):
            for s in (1, 2, 4, 8):
                b = simulate_multiport(cfg, c, s, PAPER_SEQUENCE_BYTES)
                if s <= c:
                    assert b.t_barrier < 10.0
                else:
                    assert b.t_barrier > 50.0
