"""Processor-sharing link tests."""

import pytest

from repro.simnet.engine import SimulationError, Simulator
from repro.simnet.network import SharedLink


def run_transfers(bandwidth, jobs, latency=0.0):
    """Start (delay, nbytes) transfers; return completion times."""
    sim = Simulator()
    link = SharedLink(sim, bandwidth, latency)
    done = {}

    def starter(tag, delay, nbytes):
        yield sim.timeout(delay)
        yield link.transmit(nbytes)
        done[tag] = sim.now

    for tag, (delay, nbytes) in enumerate(jobs):
        sim.process(starter(tag, delay, nbytes))
    sim.run()
    return done, link


class TestSingleTransfer:
    def test_alone_runs_at_full_bandwidth(self):
        done, _ = run_transfers(100.0, [(0.0, 1000.0)])
        assert done[0] == pytest.approx(10.0)

    def test_latency_added_once(self):
        done, _ = run_transfers(100.0, [(0.0, 1000.0)], latency=2.0)
        assert done[0] == pytest.approx(12.0)

    def test_zero_bytes_costs_latency_only(self):
        done, _ = run_transfers(100.0, [(0.0, 0.0)], latency=3.0)
        assert done[0] == pytest.approx(3.0)

    def test_negative_bytes_rejected(self):
        sim = Simulator()
        link = SharedLink(sim, 10.0)
        with pytest.raises(SimulationError):
            link.transmit(-1)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(SimulationError):
            SharedLink(Simulator(), 0.0)


class TestProcessorSharing:
    def test_two_equal_transfers_share_fairly(self):
        # Two 1000-byte transfers on a 100 B/t link: both finish at 20.
        done, _ = run_transfers(100.0, [(0.0, 1000.0), (0.0, 1000.0)])
        assert done[0] == pytest.approx(20.0)
        assert done[1] == pytest.approx(20.0)

    def test_short_job_leaves_long_job_to_full_rate(self):
        # A: 1000 bytes, B: 200 bytes, start together at 100 B/t.
        # B finishes at t=4 (rate 50). A then has 800 bytes at full
        # rate: 4 + 8 = 12... A did 200 in first 4 -> 800 left / 100.
        done, _ = run_transfers(100.0, [(0.0, 1000.0), (0.0, 200.0)])
        assert done[1] == pytest.approx(4.0)
        assert done[0] == pytest.approx(12.0)

    def test_late_arrival_slows_first(self):
        # A starts alone; B arrives at t=2 when A has 800 left.
        # They share until B (500) or A (800) finishes: B at 2+10=12,
        # A has 300 left at 12, finishes at 15.
        done, _ = run_transfers(100.0, [(0.0, 1000.0), (2.0, 500.0)])
        assert done[1] == pytest.approx(12.0)
        assert done[0] == pytest.approx(15.0)

    def test_total_throughput_is_conserved(self):
        jobs = [(0.0, 500.0), (0.0, 1500.0), (1.0, 1000.0)]
        done, link = run_transfers(100.0, jobs)
        # Last completion: at least total_bytes/bandwidth after the
        # earliest start; the link is work-conserving so exactly that
        # here (no idle gaps).
        assert max(done.values()) == pytest.approx(3000.0 / 100.0)

    def test_utilization_accounting(self):
        sim = Simulator()
        link = SharedLink(sim, 100.0)
        def proc():
            yield sim.timeout(10.0)  # idle period
            yield link.transmit(1000.0)
        sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(20.0)
        assert link.utilization() == pytest.approx(0.5)
        assert link.bytes_carried == 1000.0

    def test_many_concurrent_transfers(self):
        jobs = [(0.0, 100.0)] * 10
        done, _ = run_transfers(100.0, jobs)
        for t in done.values():
            assert t == pytest.approx(10.0)
