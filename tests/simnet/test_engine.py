"""Discrete-event engine unit tests."""

import pytest

from repro.simnet.engine import (
    SimulationError,
    Simulator,
)


class TestTimeouts:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.timeout(5.0)
            log.append(sim.now)
            yield sim.timeout(2.5)
            log.append(sim.now)

        sim.process(proc())
        assert sim.run() == 7.5
        assert log == [5.0, 7.5]

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_timeout_value_passthrough(self):
        sim = Simulator()
        got = []

        def proc():
            value = yield sim.timeout(1.0, "payload")
            got.append(value)

        sim.process(proc())
        sim.run()
        assert got == ["payload"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []

        def proc(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in range(5):
            sim.process(proc(tag))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(10.0)

        sim.process(proc())
        assert sim.run(until=4.0) == 4.0
        assert sim.run() == 10.0


class TestEvents:
    def test_manual_event(self):
        sim = Simulator()
        gate = sim.event("manual")
        log = []

        def waiter():
            value = yield gate
            log.append((sim.now, value))

        def firer():
            yield sim.timeout(3.0)
            gate.succeed("go")

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert log == [(3.0, "go")]

    def test_double_succeed_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_callback_after_trigger_still_runs(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [1]

    def test_process_result_is_event_value(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(2.0)
            return 42

        results = []

        def outer():
            value = yield sim.process(inner())
            results.append(value)

        sim.process(outer())
        sim.run()
        assert results == [42]

    def test_process_error_is_reported(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        sim.process(bad())
        with pytest.raises(SimulationError, match="boom"):
            sim.run()

    def test_yielding_non_event_rejected(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError, match="not an Event"):
            sim.run()


class TestAllOfAndGate:
    def test_all_of_waits_for_all(self):
        sim = Simulator()
        times = []

        def waiter():
            yield sim.all_of(
                [sim.timeout(1.0), sim.timeout(5.0), sim.timeout(3.0)]
            )
            times.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert times == [5.0]

    def test_all_of_empty_fires_immediately(self):
        sim = Simulator()
        done = []

        def waiter():
            yield sim.all_of([])
            done.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert done == [0.0]

    def test_gate_counts_arrivals(self):
        sim = Simulator()
        gate = sim.gate(3)
        released = []

        def arriver(delay):
            yield sim.timeout(delay)
            gate.arrive()

        def waiter():
            yield gate
            released.append(sim.now)

        for delay in (1.0, 4.0, 2.0):
            sim.process(arriver(delay))
        sim.process(waiter())
        sim.run()
        assert released == [4.0]
        assert gate.arrival_times == [1.0, 2.0, 4.0]

    def test_gate_zero_preopen(self):
        sim = Simulator()
        gate = sim.gate(0)
        assert gate.triggered

    def test_gate_over_arrival_rejected(self):
        sim = Simulator()
        gate = sim.gate(1)
        gate.arrive()
        with pytest.raises(SimulationError, match="over-arrived"):
            gate.arrive()
