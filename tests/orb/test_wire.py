"""Wire-message roundtrip tests (requests, replies, data chunks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdr.typecodes import MarshalError
from repro.orb.request import (
    DataChunk,
    MODE_CENTRALIZED,
    MODE_MULTIPORT,
    PHASE_REPLY,
    PHASE_REQUEST,
    ReplyMessage,
    RequestMessage,
    STATUS_OK,
    STATUS_USER_EXCEPTION,
    decode_chunk,
    decode_reply,
    decode_request,
)
from repro.orb.transport import PortAddress


class TestRequestMessage:
    def test_minimal_roundtrip(self):
        msg = RequestMessage(1, "obj", "op")
        assert decode_request(msg.encode()) == msg

    def test_full_roundtrip(self):
        msg = RequestMessage(
            request_id=42,
            object_key="example",
            operation="diffusion",
            mode=MODE_MULTIPORT,
            oneway=False,
            reply_port=PortAddress(7, "client:reply"),
            client_nthreads=4,
            client_data_ports=(
                PortAddress(11, "d0"),
                PortAddress(12, "d1"),
            ),
            dist_layouts=(("darray", (256, 256, 256, 256)),),
            body=b"\x01payload",
        )
        assert decode_request(msg.encode()) == msg

    def test_trace_id_roundtrips_and_defaults_to_zero(self):
        # The trace id rides in the request header right after the
        # request id (see docs/protocol.md); 0 means tracing off.
        traced = RequestMessage(9, "obj", "op", trace_id=0x1F2E3D4C5B6A7988)
        decoded = decode_request(traced.encode())
        assert decoded.trace_id == 0x1F2E3D4C5B6A7988
        assert decoded == traced
        assert decode_request(
            RequestMessage(9, "obj", "op").encode()
        ).trace_id == 0

    def test_oneway_without_reply_port(self):
        msg = RequestMessage(3, "o", "ping", oneway=True, reply_port=None)
        decoded = decode_request(msg.encode())
        assert decoded.oneway and decoded.reply_port is None

    def test_layout_lookup(self):
        msg = RequestMessage(
            1, "o", "f", dist_layouts=(("a", (1, 2)), ("b", (3,)))
        )
        assert msg.layout_of("b") == (3,)
        assert msg.layout_of("zzz") is None

    def test_unknown_mode_rejected(self):
        msg = RequestMessage(1, "o", "f")
        data = msg.encode().replace(b"centralized", b"centralizzz")
        with pytest.raises(MarshalError):
            decode_request(data)

    @given(
        rid=st.integers(0, 2**32 - 1),
        key=st.text(min_size=1, max_size=20),
        op=st.text(min_size=1, max_size=20),
        nthreads=st.integers(1, 16),
        body=st.binary(max_size=64),
    )
    @settings(max_examples=50)
    def test_header_roundtrip_property(self, rid, key, op, nthreads, body):
        msg = RequestMessage(
            rid, key, op, client_nthreads=nthreads, body=body
        )
        assert decode_request(msg.encode()) == msg


class TestReplyMessage:
    def test_ok_roundtrip(self):
        msg = ReplyMessage(9, STATUS_OK, b"result")
        assert decode_reply(msg.encode()) == msg

    def test_layouts_roundtrip(self):
        msg = ReplyMessage(
            9,
            STATUS_OK,
            b"",
            dist_layouts=(
                ("darray", (512, 512), (256, 256, 256, 256)),
            ),
        )
        decoded = decode_reply(msg.encode())
        assert decoded == msg
        assert decoded.layout_of("darray") == (
            (512, 512),
            (256, 256, 256, 256),
        )

    def test_exception_status(self):
        msg = ReplyMessage(2, STATUS_USER_EXCEPTION, b"\x01exc")
        assert decode_reply(msg.encode()).status == STATUS_USER_EXCEPTION

    def test_bad_status_rejected(self):
        msg = ReplyMessage(2, STATUS_OK)
        data = bytearray(msg.encode())
        data[16] = 99  # status field (after preamble + 64-bit rid)
        with pytest.raises(MarshalError):
            decode_reply(bytes(data))


class TestDataChunk:
    def test_roundtrip(self):
        payload = np.arange(8.0).tobytes()
        chunk = DataChunk(5, "darray", PHASE_REQUEST, 1, 2, 16, 24, payload)
        assert decode_chunk(chunk.encode()) == chunk

    def test_elements_decoding(self):
        data = np.arange(4.0)
        chunk = DataChunk(
            1, "x", PHASE_REPLY, 0, 0, 10, 14, data.tobytes()
        )
        np.testing.assert_array_equal(
            chunk.elements(np.dtype(np.float64)), data
        )

    def test_elements_size_mismatch(self):
        chunk = DataChunk(1, "x", PHASE_REQUEST, 0, 0, 0, 4, b"\0" * 7)
        with pytest.raises(MarshalError, match="bytes"):
            chunk.elements(np.dtype(np.float64))

    def test_inverted_range_rejected(self):
        chunk = DataChunk(1, "x", PHASE_REQUEST, 0, 0, 10, 4)
        with pytest.raises(MarshalError, match="inverted"):
            decode_chunk(chunk.encode())

    def test_bad_phase_rejected(self):
        good = DataChunk(1, "x", PHASE_REQUEST, 0, 0, 0, 0).encode()
        # Corrupt the phase ulong (after rid ulonglong + string "x").
        bad = bytearray(good)
        # Find phase by decoding offsets: rid at 8..16, string len at
        # 16..20, chars 20..22 (+pad), phase aligned at 24.
        bad[24] = 7
        with pytest.raises(MarshalError, match="phase"):
            decode_chunk(bytes(bad))
