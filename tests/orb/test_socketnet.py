"""TCP transport and remote naming tests.

In-process these exercise real sockets over loopback; the
cross-process path is covered by tests/integration/test_multiprocess.py.
"""

import numpy as np
import pytest

from repro.orb.naming import NamingError
from repro.orb.reference import ObjectReference
from repro.orb.socketnet import (
    NamingServer,
    RemoteNamingClient,
    SocketFabric,
    SocketPortAddress,
)
from repro.orb.transport import KIND_DATA, KIND_REQUEST, TransportError


@pytest.fixture()
def fabric():
    with SocketFabric("test-fabric") as fabric:
        yield fabric


class TestSocketFabric:
    def test_local_delivery(self, fabric):
        a, b = fabric.open_port("a"), fabric.open_port("b")
        a.send(b.address, b"hello", KIND_REQUEST)
        src, kind, payload = b.recv(timeout=5)
        assert (kind, payload) == (KIND_REQUEST, b"hello")
        assert src == a.address

    def test_cross_fabric_delivery_over_tcp(self, fabric):
        with SocketFabric("peer") as peer:
            sender = fabric.open_port("sender")
            receiver = peer.open_port("receiver")
            sender.send(receiver.address, b"over tcp", KIND_DATA)
            src, kind, payload = receiver.recv(timeout=5)
            assert payload == b"over tcp"
            assert src.tcp_port == fabric.tcp_port

    def test_bidirectional_conversation(self, fabric):
        with SocketFabric("peer") as peer:
            a = fabric.open_port("a")
            b = peer.open_port("b")
            a.send(b.address, b"ping")
            src, _, _ = b.recv(timeout=5)
            b.send(src, b"pong")
            assert a.recv(timeout=5)[2] == b"pong"

    def test_many_messages_stay_ordered(self, fabric):
        with SocketFabric("peer") as peer:
            a = fabric.open_port()
            b = peer.open_port()
            for i in range(100):
                a.send(b.address, bytes([i]), KIND_DATA)
            got = [b.recv(timeout=5)[2][0] for _ in range(100)]
            assert got == list(range(100))

    def test_large_payload(self, fabric):
        with SocketFabric("peer") as peer:
            a = fabric.open_port()
            b = peer.open_port()
            blob = np.arange(200_000, dtype=np.float64).tobytes()
            a.send(b.address, blob)
            assert b.recv(timeout=10)[2] == blob

    def test_unknown_local_port(self, fabric):
        a = fabric.open_port()
        ghost = SocketPortAddress(fabric.host, fabric.tcp_port, 9999)
        with pytest.raises(TransportError, match="no port"):
            a.send(ghost, b"x")

    def test_unreachable_endpoint(self, fabric):
        a = fabric.open_port()
        # A port that is almost certainly closed.
        ghost = SocketPortAddress("127.0.0.1", 1, 1)
        with pytest.raises(TransportError, match="cannot reach"):
            a.send(ghost, b"x")

    def test_bytes_only(self, fabric):
        a, b = fabric.open_port(), fabric.open_port()
        with pytest.raises(TransportError, match="bytes"):
            a.send(b.address, "not bytes")  # type: ignore[arg-type]

    def test_meter_sees_outgoing(self, fabric):
        seen = []
        fabric.add_meter(lambda s, d, k, n: seen.append((k, n)))
        a, b = fabric.open_port(), fabric.open_port()
        a.send(b.address, b"xyz", KIND_DATA)
        assert seen == [(KIND_DATA, 3)]

    def test_closed_fabric_rejects_ports(self):
        fabric = SocketFabric()
        fabric.close()
        with pytest.raises(TransportError, match="closed"):
            fabric.open_port()

    def test_addresses_survive_ior_roundtrip(self, fabric):
        port = fabric.open_port("obj:request")
        ref = ObjectReference(
            object_key="obj",
            repo_id="IDL:obj:1.0",
            request_port=port.address,
            data_ports=(port.address,),
        )
        back = ObjectReference.from_ior(ref.ior())
        assert back.request_port == port.address
        assert back.request_port.tcp_port == fabric.tcp_port


def make_ref(fabric, key="obj"):
    port = fabric.open_port(key)
    return ObjectReference(
        object_key=key,
        repo_id=f"IDL:{key}:1.0",
        request_port=port.address,
    )


class TestRemoteNaming:
    def test_bind_resolve_roundtrip(self, fabric):
        with NamingServer() as server:
            client = RemoteNamingClient(server.host, server.tcp_port)
            ref = make_ref(fabric)
            client.bind("example", ref)
            resolved = client.resolve("example")
            assert resolved == ref
            client.close()

    def test_resolve_by_host(self, fabric):
        with NamingServer() as server:
            client = RemoteNamingClient(server.host, server.tcp_port)
            client.bind("obj", make_ref(fabric, "a"), host="h1")
            client.bind("obj", make_ref(fabric, "b"), host="h2")
            assert client.resolve("obj", "h2").object_key == "b"
            with pytest.raises(NamingError, match="several"):
                client.resolve("obj")
            client.close()

    def test_duplicate_bind_error_propagates(self, fabric):
        with NamingServer() as server:
            client = RemoteNamingClient(server.host, server.tcp_port)
            client.bind("x", make_ref(fabric))
            with pytest.raises(NamingError, match="already bound"):
                client.bind("x", make_ref(fabric))
            client.rebind("x", make_ref(fabric, "newer"))
            assert client.resolve("x").object_key == "newer"
            client.close()

    def test_unbind_and_names(self, fabric):
        with NamingServer() as server:
            client = RemoteNamingClient(server.host, server.tcp_port)
            client.bind("a", make_ref(fabric))
            client.bind("b", make_ref(fabric), host="h")
            assert client.names() == [("a", ""), ("b", "h")]
            client.unbind("a")
            assert client.names() == [("b", "h")]
            with pytest.raises(NamingError):
                client.resolve("a")
            client.close()

    def test_unreachable_server(self):
        client = RemoteNamingClient("127.0.0.1", 1)
        with pytest.raises(NamingError, match="unreachable"):
            client.resolve("anything")

    def test_two_clients_share_registry(self, fabric):
        with NamingServer() as server:
            c1 = RemoteNamingClient(server.host, server.tcp_port)
            c2 = RemoteNamingClient(server.host, server.tcp_port)
            c1.bind("shared", make_ref(fabric))
            assert c2.resolve("shared").object_key == "obj"
            c1.close()
            c2.close()


class TestOrbOverSockets:
    def test_full_invocation_over_tcp_fabrics(self):
        """Two ORBs in one process, joined only by TCP + the naming
        server — the in-process fabric is not involved at all."""
        from repro import ORB, compile_idl

        idl = compile_idl(
            """
            typedef dsequence<double> d;
            interface adder { double total(in d xs); };
            """,
            module_name="socket_idl",
        )

        class Impl(idl.adder_skel):
            def total(self, xs):
                value = float(xs.local_data().sum())
                if self.comm is not None:
                    from repro.rts.mpi import SUM

                    value = self.comm.allreduce(value, op=SUM)
                return value

        with NamingServer() as names:
            server_fabric = SocketFabric("server-side")
            client_fabric = SocketFabric("client-side")
            server_orb = ORB(
                "server",
                fabric=server_fabric,
                naming=RemoteNamingClient(names.host, names.tcp_port),
            )
            client_orb = ORB(
                "client",
                fabric=client_fabric,
                naming=RemoteNamingClient(names.host, names.tcp_port),
            )
            try:
                server_orb.serve("adder", lambda ctx: Impl(), 3)

                def client(c):
                    proxy = idl.adder._spmd_bind("adder", c.runtime)
                    xs = idl.d.from_global(
                        np.arange(100, dtype=np.float64), comm=c.comm
                    )
                    return proxy.total(xs)

                results = client_orb.run_spmd_client(2, client)
                assert results == [4950.0, 4950.0]
            finally:
                client_orb.shutdown()
                server_orb.shutdown()
                server_fabric.close()
                client_fabric.close()
