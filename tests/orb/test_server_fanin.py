"""Fan-in edge cases on the event-loop server: admission control
(connection and request), per-client backpressure, and the fair
dispatch pool.

The ISSUE acceptance scenarios live here: a connect storm past
``max_connections`` gets a BUSY frame instead of a hang, a slow
client stalls only its own queue, and a client that disconnects
mid-backpressure frees its admission slot.
"""

import socket
import threading
import time

import pytest

from repro import ORB, FtPolicy, compile_idl
from repro.cdr.decoder import CdrDecoder
from repro.orb.naming import NamingService
from repro.orb.request import RequestMessage, peek_request
from repro.orb.server import (
    KIND_BUSY,
    ServerConfig,
    ServerGovernor,
)
from repro.orb.socketnet import SocketFabric

FANIN_IDL = """
interface blocker {
    long ping(in long x);
    long slow(in long x);
    oneway void poke(in long x);
};
"""


@pytest.fixture(scope="module")
def idl():
    return compile_idl(FANIN_IDL, module_name="fanin_idl")


def _servant_factory(idl, gate):
    class Blocker(idl.blocker_skel):
        def ping(self, x):
            return int(x) + 1

        def slow(self, x):
            gate.wait(timeout=30.0)
            return int(x)

        def poke(self, x):
            gate.wait(timeout=30.0)

    return lambda ctx: Blocker()


def _wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# peek_request
# ---------------------------------------------------------------------------


class TestPeekRequest:
    def test_roundtrip(self):
        message = RequestMessage(
            request_id=(7 << 32) | 42,
            object_key="obj",
            operation="op",
            trace_id=99,
            oneway=True,
        )
        payload = b"".join(
            bytes(s) for s in message.encode_segments()
        )
        routing = peek_request(payload)
        assert routing is not None
        assert routing.request_id == (7 << 32) | 42
        assert routing.client_identity == 7
        assert routing.trace_id == 99
        assert routing.operation == "op"
        assert routing.oneway is True
        assert routing.reply_port is None

    def test_garbage_returns_none(self):
        assert peek_request(b"") is None
        assert peek_request(b"\xff" * 40) is None

    def test_wrong_mode_returns_none(self):
        message = RequestMessage(
            request_id=1, object_key="obj", operation="op"
        )
        payload = bytearray(
            b"".join(bytes(s) for s in message.encode_segments())
        )
        # Corrupt the mode string ("centralized" is in the header).
        index = payload.find(b"centralized")
        assert index >= 0
        payload[index : index + 11] = b"xentralized"
        assert peek_request(bytes(payload)) is None


# ---------------------------------------------------------------------------
# Governor unit behavior
# ---------------------------------------------------------------------------


class TestGovernor:
    def test_unadmitted_completion_is_ignored(self):
        gov = ServerGovernor(ServerConfig(client_queue_limit=4))
        gov.request_done((123 << 32) | 1)  # never admitted: no-op
        snap = gov.snapshot()
        assert snap["requests"]["inflight"] == 0
        assert snap["requests"]["completed"] == 0

    def test_max_inflight_rejects(self):
        gov = ServerGovernor(ServerConfig(max_inflight=2))
        assert gov.admit_request(1, 1 << 32, 0, None)
        assert gov.admit_request(1, (1 << 32) | 1, 0, None)
        assert not gov.admit_request(1, (1 << 32) | 2, 0, None)
        snap = gov.snapshot()
        assert snap["requests"]["rejected"] == 1
        gov.request_done(1 << 32)
        assert gov.admit_request(1, (1 << 32) | 3, 0, None)

    def test_pause_and_resume_transitions(self):
        class Loop:
            paused: list = []
            resumed: list = []

            def pause(self, identity):
                self.paused.append(identity)

            def request_resume(self, identity):
                self.resumed.append(identity)

        loop = Loop()
        gov = ServerGovernor(
            ServerConfig(client_queue_limit=3, resume_at=1)
        )
        gov.attach_loop(loop)
        for seq in range(3):
            gov.admit_request(5, (5 << 32) | seq, 0, None)
        assert loop.paused == [5]
        assert gov.is_paused(5)
        gov.request_done(5 << 32)  # pending 2: still paused
        assert loop.resumed == []
        gov.request_done((5 << 32) | 1)  # pending 1 == resume_at
        assert loop.resumed == [5]
        assert not gov.is_paused(5)

    def test_disconnect_clears_orphaned_identity(self):
        gov = ServerGovernor(ServerConfig(client_queue_limit=2))
        gov.on_connection()
        gov.admit_request(9, 9 << 32, 0, None)
        gov.admit_request(9, (9 << 32) | 1, 0, None)
        assert gov.is_paused(9)
        gov.on_disconnect([9])
        snap = gov.snapshot()
        assert snap["requests"]["inflight"] == 0
        assert snap["backpressure"]["paused_clients"] == 0
        # A late completion for the forgotten identity stays a no-op.
        gov.request_done(9 << 32)
        assert gov.snapshot()["requests"]["inflight"] == 0


# ---------------------------------------------------------------------------
# Fair dispatch pool ordering
# ---------------------------------------------------------------------------


class TestFairPool:
    def _pool(self, executed, release, nworkers=1):
        from repro.orb.adapter import _DispatchPool

        class Engine:
            def execute(self, request):
                executed.append(request.request_id)
                release.wait(timeout=10.0)

        return _DispatchPool(Engine(), nworkers, "test-pool")

    def _request(self, identity, seq):
        return RequestMessage(
            request_id=(identity << 32) | seq,
            object_key="obj",
            operation="op",
        )

    def test_round_robin_across_clients_fifo_within(self):
        executed: list = []
        release = threading.Event()
        pool = self._pool(executed, release)
        # Worker grabs A's first request and blocks on the gate;
        # everything else queues behind it.
        pool.dispatch(self._request(1, 0))
        assert _wait_for(lambda: len(executed) == 1)
        for seq in (1, 2):
            pool.dispatch(self._request(1, seq))
        for seq in (0, 1, 2):
            pool.dispatch(self._request(2, seq))
        release.set()
        pool.stop()
        ids = [(r >> 32, r & 0xFFFFFFFF) for r in executed]
        # Per-client FIFO...
        assert [s for c, s in ids if c == 1] == [0, 1, 2]
        assert [s for c, s in ids if c == 2] == [0, 1, 2]
        # ...and round-robin interleaving, not client-1-then-client-2.
        assert ids == [
            (1, 0), (2, 0), (1, 1), (2, 1), (1, 2), (2, 2),
        ]

    def test_stop_drains_queued_requests(self):
        executed: list = []
        release = threading.Event()
        release.set()
        pool = self._pool(executed, release, nworkers=2)
        for seq in range(8):
            pool.dispatch(self._request(3, seq))
        pool.stop()
        assert [r & 0xFFFFFFFF for r in executed] == list(range(8))


# ---------------------------------------------------------------------------
# Connection admission: connect storm gets BUSY, not a hang
# ---------------------------------------------------------------------------


def _read_busy_frame(sock):
    """Read one frame off a raw client socket and return its kind."""
    header = b""
    while len(header) < 4:
        chunk = sock.recv(4 - len(header))
        assert chunk, "connection closed before the BUSY frame"
        header += chunk
    length = int.from_bytes(header, "big")
    body = b""
    while len(body) < length:
        chunk = sock.recv(length - len(body))
        assert chunk, "connection closed mid-frame"
        body += chunk
    dec = CdrDecoder(body)
    dec.read_ulong()  # dest port id (0: no real port)
    dec.read_string()  # src host
    dec.read_ulong()  # src tcp port
    dec.read_ulong()  # src port id
    dec.read_string()  # src label
    return dec.read_string()  # kind


def test_connect_storm_past_max_connections_gets_busy():
    config = ServerConfig(max_connections=2)
    with SocketFabric("storm-server", server=config) as fabric:
        keep = []
        try:
            for _ in range(2):
                sock = socket.create_connection(
                    (fabric.host, fabric.tcp_port), timeout=5
                )
                keep.append(sock)
            # Both admitted by the loop before the storm starts.
            assert _wait_for(
                lambda: fabric.server_stats()["connections"][
                    "accepted"
                ]
                == 2
            )
            for _ in range(5):
                extra = socket.create_connection(
                    (fabric.host, fabric.tcp_port), timeout=5
                )
                extra.settimeout(5)
                try:
                    assert _read_busy_frame(extra) == KIND_BUSY
                    # ...and then a clean close, not a hang.
                    assert extra.recv(1) == b""
                finally:
                    extra.close()
            stats = fabric.server_stats()["connections"]
            assert stats["rejected"] == 5
            assert stats["active"] == 2
        finally:
            for sock in keep:
                sock.close()
        # Closed connections release their admission slots.
        assert _wait_for(
            lambda: fabric.server_stats()["connections"]["active"]
            == 0
        )
        final = socket.create_connection(
            (fabric.host, fabric.tcp_port), timeout=5
        )
        final.close()
        assert _wait_for(
            lambda: fabric.server_stats()["connections"]["accepted"]
            == 3
        )


# ---------------------------------------------------------------------------
# Request admission: BUSY reply is retryable
# ---------------------------------------------------------------------------


def test_max_inflight_busy_reply_is_retried(idl):
    gate = threading.Event()
    naming = NamingService()
    config = ServerConfig(max_inflight=2, client_queue_limit=0)
    with SocketFabric("busy-server", server=config) as sf, \
            SocketFabric("busy-client") as cf:
        server = ORB("busy-server", fabric=sf, naming=naming, timeout=5.0)
        client = ORB("busy-client", fabric=cf, naming=naming, timeout=5.0)
        with server, client:
            server.serve(
                "blocker",
                _servant_factory(idl, gate),
                nthreads=1,
                dispatch_workers=4,
            )
            policy = FtPolicy(
                max_retries=50,
                backoff_base_ms=5.0,
                backoff_cap_ms=50.0,
            )
            runtime = client.client_runtime(
                pipeline_depth=8, ft_policy=policy
            )
            proxy = idl.blocker._bind("blocker", runtime)
            futures = [proxy.slow_nb(i) for i in range(6)]
            # The overflow got BUSY replies, not queue slots.
            assert _wait_for(
                lambda: sf.governor.snapshot()["requests"]["rejected"]
                > 0
            )
            gate.set()
            assert sorted(f.value(timeout=30.0) for f in futures) == \
                list(range(6))
            runtime.close()
            stats = server.stats()["server"]["requests"]
            assert stats["rejected"] > 0
            assert stats["max_inflight"] == 2


# ---------------------------------------------------------------------------
# Backpressure: a slow client stalls only its own queue
# ---------------------------------------------------------------------------


def test_slow_client_stalls_only_its_own_queue(idl):
    gate = threading.Event()
    naming = NamingService()
    config = ServerConfig(client_queue_limit=4)
    with SocketFabric("bp-server", server=config) as sf, \
            SocketFabric("bp-hog") as hog_fabric, \
            SocketFabric("bp-polite") as polite_fabric:
        server = ORB("bp-server", fabric=sf, naming=naming, timeout=10.0)
        hog = ORB("bp-hog", fabric=hog_fabric, naming=naming, timeout=10.0)
        polite = ORB(
            "bp-polite", fabric=polite_fabric, naming=naming, timeout=10.0
        )
        with server, hog, polite:
            server.serve(
                "blocker",
                _servant_factory(idl, gate),
                nthreads=1,
                dispatch_workers=2,
            )
            hog_rt = hog.client_runtime()
            hog_proxy = idl.blocker._bind("blocker", hog_rt)
            # 20 oneways into a gated servant: the hog's queue fills
            # and its socket is paused at the limit.
            for i in range(20):
                hog_proxy.poke(i)
            assert _wait_for(
                lambda: sf.governor.snapshot()["backpressure"][
                    "paused_clients"
                ]
                == 1
            )
            snap = sf.governor.snapshot()
            assert snap["requests"]["inflight"] <= 4
            # A different client's requests keep flowing while the
            # hog is paused.
            polite_rt = polite.client_runtime()
            polite_proxy = idl.blocker._bind("blocker", polite_rt)
            assert [polite_proxy.ping(i) for i in range(5)] == [
                i + 1 for i in range(5)
            ]
            assert (
                sf.governor.snapshot()["backpressure"][
                    "paused_clients"
                ]
                == 1
            )
            # Open the gate: the hog drains, resumes, and finishes.
            gate.set()
            assert _wait_for(
                lambda: sf.governor.snapshot()["requests"]["inflight"]
                == 0
            )
            final = sf.governor.snapshot()
            assert final["backpressure"]["paused_clients"] == 0
            assert final["backpressure"]["pauses"] >= 1
            assert final["backpressure"]["resumes"] >= 1
            # Every admitted oneway was executed, in spite of the
            # pauses (admitted includes the polite client's pings).
            assert final["requests"]["completed"] == \
                final["requests"]["admitted"]
            hog_rt.close()
            polite_rt.close()


# ---------------------------------------------------------------------------
# Disconnect mid-backpressure frees the admission slot
# ---------------------------------------------------------------------------


def test_disconnect_mid_backpressure_frees_slot(idl):
    gate = threading.Event()
    naming = NamingService()
    limit = 4
    config = ServerConfig(client_queue_limit=limit)
    with SocketFabric("dc-server", server=config) as sf:
        server = ORB("dc-server", fabric=sf, naming=naming, timeout=10.0)
        with server:
            server.serve(
                "blocker",
                _servant_factory(idl, gate),
                nthreads=1,
                dispatch_workers=limit,
            )
            with SocketFabric("dc-client") as cf:
                client = ORB(
                    "dc-client", fabric=cf, naming=naming, timeout=10.0
                )
                with client:
                    runtime = client.client_runtime()
                    proxy = idl.blocker._bind("blocker", runtime)
                    # Exactly `limit` oneways: the identity pauses
                    # with its kernel buffer drained, so the EOF of
                    # the coming disconnect is observable.
                    for i in range(limit):
                        proxy.poke(i)
                    assert _wait_for(
                        lambda: sf.governor.snapshot()[
                            "backpressure"
                        ]["paused_clients"]
                        == 1
                    )
                    runtime.close()
            # The client fabric is gone; the paused-connection sweep
            # notices and frees the identity's pending slots even
            # though the servant is still blocked.
            assert _wait_for(
                lambda: sf.governor.snapshot()["requests"]["inflight"]
                == 0,
                timeout=15.0,
            )
            assert (
                sf.governor.snapshot()["backpressure"][
                    "paused_clients"
                ]
                == 0
            )
            gate.set()


# ---------------------------------------------------------------------------
# Stats surface
# ---------------------------------------------------------------------------


def test_orb_stats_server_section_schema():
    with SocketFabric(
        "stats-server",
        server=ServerConfig(max_connections=100, max_inflight=500),
    ) as fabric:
        orb = ORB("stats-server", fabric=fabric, naming=NamingService())
        with orb:
            section = orb.stats()["server"]
            assert sorted(section) == [
                "backpressure", "connections", "requests",
            ]
            assert section["connections"]["max"] == 100
            assert section["requests"]["max_inflight"] == 500
            assert section["backpressure"]["queue_limit"] == 64
            assert section["backpressure"]["resume_at"] == 32


def test_server_metrics_mirrored_when_tracing(idl):
    gate = threading.Event()
    gate.set()
    naming = NamingService()
    with SocketFabric("m-server") as sf, SocketFabric("m-client") as cf:
        server = ORB(
            "m-server", fabric=sf, naming=naming, timeout=5.0, trace=True
        )
        client = ORB("m-client", fabric=cf, naming=naming, timeout=5.0)
        with server, client:
            server.serve(
                "blocker", _servant_factory(idl, gate), nthreads=1
            )
            runtime = client.client_runtime()
            proxy = idl.blocker._bind("blocker", runtime)
            assert proxy.ping(1) == 2
            counters = server.stats()["trace"]["metrics"]["counters"]
            assert counters.get("server.connections.accepted", 0) >= 1
            assert counters.get("server.requests.admitted", 0) >= 1
            runtime.close()
