"""Unit tests for transfer-engine building blocks (slots, composition,
chunk collection, body marshaling)."""

import numpy as np
import pytest

from repro.cdr.typecodes import (
    DSequenceTC,
    MarshalError,
    TC_DOUBLE,
    TC_LONG,
    TC_STRING,
    TC_VOID,
)
from repro.dist import Layout
from repro.orb.operation import (
    Direction,
    OperationSpec,
    ParamSpec,
    RemoteError,
)
from repro.orb.request import DataChunk, PHASE_REQUEST
from repro.orb.transfer import (
    ChunkCollector,
    assemble_chunks,
    compose,
    decode_plain_body,
    decompose,
    encode_plain_body,
    produced_slots,
    reply_slots,
    request_slots,
)
from repro.orb.transport import Fabric, KIND_DATA

DS = DSequenceTC(TC_DOUBLE)


def spec(**kw):
    defaults = dict(
        name="op",
        params=(
            ParamSpec("a", Direction.IN, TC_LONG),
            ParamSpec("b", Direction.INOUT, DS),
            ParamSpec("c", Direction.OUT, TC_STRING),
            ParamSpec("d", Direction.OUT, DS),
            ParamSpec("e", Direction.INOUT, TC_LONG),
        ),
        return_tc=TC_DOUBLE,
    )
    defaults.update(kw)
    return OperationSpec(**defaults)


class TestSlots:
    def test_request_slots_are_sent_params(self):
        names = [s.name for s in request_slots(spec())]
        assert names == ["a", "b", "e"]

    def test_reply_slots_return_first(self):
        names = [s.name for s in reply_slots(spec())]
        assert names == ["__return__", "b", "c", "d", "e"]

    def test_void_return_omitted(self):
        names = [s.name for s in reply_slots(spec(return_tc=TC_VOID))]
        assert names == ["b", "c", "d", "e"]

    def test_produced_slots_skip_inout_dsequence(self):
        # 'b' (inout dsequence) is mutated in place, not produced.
        names = [s.name for s in produced_slots(spec())]
        assert names == ["__return__", "c", "d", "e"]

    def test_distributed_flag(self):
        by_name = {s.name: s for s in reply_slots(spec())}
        assert by_name["b"].distributed and by_name["d"].distributed
        assert not by_name["c"].distributed


class TestComposition:
    def test_compose_rules(self):
        assert compose([]) is None
        assert compose([7]) == 7
        assert compose([1, 2]) == (1, 2)

    def test_decompose_inverts(self):
        assert decompose(None, 0, "x") == []
        assert decompose(7, 1, "x") == [7]
        assert decompose((1, 2), 2, "x") == [1, 2]

    def test_decompose_arity_errors(self):
        with pytest.raises(RemoteError):
            decompose(5, 0, "servant")
        with pytest.raises(RemoteError):
            decompose(5, 2, "servant")
        with pytest.raises(RemoteError):
            decompose((1, 2, 3), 2, "servant")


class TestPlainBody:
    def test_roundtrip_skips_distributed(self):
        slots = request_slots(spec())
        body = encode_plain_body(slots, {"a": 5, "e": -1, "b": "IGNORED"})
        values = decode_plain_body(slots, body)
        assert values == {"a": 5, "e": -1}


class TestChunkCollector:
    def make_chunk(self, rid, param, lo, hi, phase=PHASE_REQUEST):
        data = np.arange(lo, hi, dtype=np.float64)
        return DataChunk(
            rid, param, phase, 0, 0, lo, hi, data.tobytes()
        )

    def test_collects_expected_count(self):
        fabric = Fabric()
        port, sender = fabric.open_port(), fabric.open_port()
        collector = ChunkCollector(port)
        for chunk in (
            self.make_chunk(1, "x", 0, 4),
            self.make_chunk(1, "x", 4, 8),
        ):
            sender.send(port.address, chunk.encode(), KIND_DATA)
        chunks = collector.collect(1, "x", PHASE_REQUEST, 2, timeout=5)
        assert len(chunks) == 2

    def test_unrelated_chunks_are_held_not_lost(self):
        fabric = Fabric()
        port, sender = fabric.open_port(), fabric.open_port()
        collector = ChunkCollector(port)
        sender.send(
            port.address, self.make_chunk(2, "y", 0, 3).encode(), KIND_DATA
        )
        sender.send(
            port.address, self.make_chunk(1, "x", 0, 3).encode(), KIND_DATA
        )
        got = collector.collect(1, "x", PHASE_REQUEST, 1, timeout=5)
        assert got[0].param == "x"
        # The held chunk for request 2 is still retrievable.
        got2 = collector.collect(2, "y", PHASE_REQUEST, 1, timeout=5)
        assert got2[0].param == "y"

    def test_timeout_when_chunks_missing(self):
        from repro.orb.transport import TransportError

        fabric = Fabric()
        collector = ChunkCollector(fabric.open_port())
        with pytest.raises(TransportError):
            collector.collect(1, "x", PHASE_REQUEST, 1, timeout=0.05)


class TestAssembleChunks:
    def test_places_chunks_at_local_offsets(self):
        layout = Layout(((0, 4), (4, 10)))
        out = np.zeros(6)
        chunks = [
            DataChunk(
                1, "x", PHASE_REQUEST, 0, 1, 4, 7,
                np.array([40.0, 50.0, 60.0]).tobytes(),
            ),
            DataChunk(
                1, "x", PHASE_REQUEST, 1, 1, 7, 10,
                np.array([70.0, 80.0, 90.0]).tobytes(),
            ),
        ]
        assemble_chunks(chunks, layout, 1, np.dtype(np.float64), out)
        np.testing.assert_array_equal(out, [40, 50, 60, 70, 80, 90])

    def test_out_of_block_chunk_rejected(self):
        layout = Layout(((0, 4), (4, 10)))
        chunk = DataChunk(
            1, "x", PHASE_REQUEST, 0, 1, 2, 5,
            np.zeros(3).tobytes(),
        )
        with pytest.raises(MarshalError, match="outside"):
            assemble_chunks(
                [chunk], layout, 1, np.dtype(np.float64), np.zeros(6)
            )

    def test_size_mismatch_rejected(self):
        layout = Layout(((0, 4),))
        chunk = DataChunk(
            1, "x", PHASE_REQUEST, 0, 0, 0, 3, b"\0" * 10
        )
        with pytest.raises(MarshalError, match="bytes"):
            assemble_chunks(
                [chunk], layout, 0, np.dtype(np.float64), np.zeros(4)
            )
