"""Unit tests for transfer-engine building blocks (slots, composition,
chunk collection, body marshaling)."""

import numpy as np
import pytest

from repro.cdr.typecodes import (
    DSequenceTC,
    MarshalError,
    TC_DOUBLE,
    TC_LONG,
    TC_STRING,
    TC_VOID,
)
from repro.dist import Layout
from repro.orb.operation import (
    Direction,
    OperationSpec,
    ParamSpec,
    RemoteError,
)
from repro.orb.request import DataChunk, PHASE_REQUEST
from repro.orb.transfer import (
    ChunkCollector,
    assemble_chunks,
    compose,
    decode_plain_body,
    decompose,
    encode_plain_body,
    produced_slots,
    reply_slots,
    request_slots,
)
from repro.orb.transport import Fabric, KIND_DATA

DS = DSequenceTC(TC_DOUBLE)


def spec(**kw):
    defaults = dict(
        name="op",
        params=(
            ParamSpec("a", Direction.IN, TC_LONG),
            ParamSpec("b", Direction.INOUT, DS),
            ParamSpec("c", Direction.OUT, TC_STRING),
            ParamSpec("d", Direction.OUT, DS),
            ParamSpec("e", Direction.INOUT, TC_LONG),
        ),
        return_tc=TC_DOUBLE,
    )
    defaults.update(kw)
    return OperationSpec(**defaults)


class TestSlots:
    def test_request_slots_are_sent_params(self):
        names = [s.name for s in request_slots(spec())]
        assert names == ["a", "b", "e"]

    def test_reply_slots_return_first(self):
        names = [s.name for s in reply_slots(spec())]
        assert names == ["__return__", "b", "c", "d", "e"]

    def test_void_return_omitted(self):
        names = [s.name for s in reply_slots(spec(return_tc=TC_VOID))]
        assert names == ["b", "c", "d", "e"]

    def test_produced_slots_skip_inout_dsequence(self):
        # 'b' (inout dsequence) is mutated in place, not produced.
        names = [s.name for s in produced_slots(spec())]
        assert names == ["__return__", "c", "d", "e"]

    def test_distributed_flag(self):
        by_name = {s.name: s for s in reply_slots(spec())}
        assert by_name["b"].distributed and by_name["d"].distributed
        assert not by_name["c"].distributed


class TestComposition:
    def test_compose_rules(self):
        assert compose([]) is None
        assert compose([7]) == 7
        assert compose([1, 2]) == (1, 2)

    def test_decompose_inverts(self):
        assert decompose(None, 0, "x") == []
        assert decompose(7, 1, "x") == [7]
        assert decompose((1, 2), 2, "x") == [1, 2]

    def test_decompose_arity_errors(self):
        with pytest.raises(RemoteError):
            decompose(5, 0, "servant")
        with pytest.raises(RemoteError):
            decompose(5, 2, "servant")
        with pytest.raises(RemoteError):
            decompose((1, 2, 3), 2, "servant")


class TestPlainBody:
    def test_roundtrip_skips_distributed(self):
        slots = request_slots(spec())
        body = encode_plain_body(slots, {"a": 5, "e": -1, "b": "IGNORED"})
        values = decode_plain_body(slots, body)
        assert values == {"a": 5, "e": -1}


class TestChunkCollector:
    def make_chunk(self, rid, param, lo, hi, phase=PHASE_REQUEST):
        data = np.arange(lo, hi, dtype=np.float64)
        return DataChunk(
            rid, param, phase, 0, 0, lo, hi, data.tobytes()
        )

    def test_collects_expected_count(self):
        fabric = Fabric()
        port, sender = fabric.open_port(), fabric.open_port()
        collector = ChunkCollector(port)
        for chunk in (
            self.make_chunk(1, "x", 0, 4),
            self.make_chunk(1, "x", 4, 8),
        ):
            sender.send(port.address, chunk.encode(), KIND_DATA)
        chunks = collector.collect(1, "x", PHASE_REQUEST, 2, timeout=5)
        assert len(chunks) == 2

    def test_unrelated_chunks_are_held_not_lost(self):
        fabric = Fabric()
        port, sender = fabric.open_port(), fabric.open_port()
        collector = ChunkCollector(port)
        sender.send(
            port.address, self.make_chunk(2, "y", 0, 3).encode(), KIND_DATA
        )
        sender.send(
            port.address, self.make_chunk(1, "x", 0, 3).encode(), KIND_DATA
        )
        got = collector.collect(1, "x", PHASE_REQUEST, 1, timeout=5)
        assert got[0].param == "x"
        # The held chunk for request 2 is still retrievable.
        got2 = collector.collect(2, "y", PHASE_REQUEST, 1, timeout=5)
        assert got2[0].param == "y"

    def test_timeout_when_chunks_missing(self):
        from repro.orb.transport import TransportError

        fabric = Fabric()
        collector = ChunkCollector(fabric.open_port())
        with pytest.raises(TransportError):
            collector.collect(1, "x", PHASE_REQUEST, 1, timeout=0.05)


class TestAssembleChunks:
    def test_places_chunks_at_local_offsets(self):
        layout = Layout(((0, 4), (4, 10)))
        out = np.zeros(6)
        chunks = [
            DataChunk(
                1, "x", PHASE_REQUEST, 0, 1, 4, 7,
                np.array([40.0, 50.0, 60.0]).tobytes(),
            ),
            DataChunk(
                1, "x", PHASE_REQUEST, 1, 1, 7, 10,
                np.array([70.0, 80.0, 90.0]).tobytes(),
            ),
        ]
        assemble_chunks(chunks, layout, 1, np.dtype(np.float64), out)
        np.testing.assert_array_equal(out, [40, 50, 60, 70, 80, 90])

    def test_out_of_block_chunk_rejected(self):
        layout = Layout(((0, 4), (4, 10)))
        chunk = DataChunk(
            1, "x", PHASE_REQUEST, 0, 1, 2, 5,
            np.zeros(3).tobytes(),
        )
        with pytest.raises(MarshalError, match="outside"):
            assemble_chunks(
                [chunk], layout, 1, np.dtype(np.float64), np.zeros(6)
            )

    def test_size_mismatch_rejected(self):
        layout = Layout(((0, 4),))
        chunk = DataChunk(
            1, "x", PHASE_REQUEST, 0, 0, 0, 3, b"\0" * 10
        )
        with pytest.raises(MarshalError, match="bytes"):
            assemble_chunks(
                [chunk], layout, 0, np.dtype(np.float64), np.zeros(4)
            )


class TestChunkCollectorLifecycle:
    """Eviction and retirement: abandoned requests must not leak."""

    def make_chunk(self, rid, param, lo, hi, phase=PHASE_REQUEST):
        data = np.arange(lo, hi, dtype=np.float64)
        return DataChunk(rid, param, phase, 0, 0, lo, hi, data.tobytes())

    def test_timeout_evicts_partial_entry(self):
        from repro.orb.transport import TransportError

        fabric = Fabric()
        port, sender = fabric.open_port(), fabric.open_port()
        collector = ChunkCollector(port)
        # One of two expected chunks arrives; the collect times out.
        sender.send(
            port.address, self.make_chunk(1, "x", 0, 4).encode(), KIND_DATA
        )
        with pytest.raises(TransportError):
            collector.collect(1, "x", PHASE_REQUEST, 2, timeout=0.1)
        assert collector.pending_entries() == 0

    def test_discard_evicts_and_drops_late_chunks(self):
        fabric = Fabric()
        port, sender = fabric.open_port(), fabric.open_port()
        collector = ChunkCollector(port)
        sender.send(
            port.address, self.make_chunk(7, "x", 0, 4).encode(), KIND_DATA
        )
        # Pull the chunk into the pending table via an unrelated wait.
        from repro.orb.transport import TransportError

        with pytest.raises(TransportError):
            collector.collect(8, "y", PHASE_REQUEST, 1, timeout=0.1)
        assert collector.pending_entries() == 1
        collector.discard(7)
        assert collector.pending_entries() == 0
        # A late chunk for the retired request is dropped on arrival,
        # not held forever.
        sender.send(
            port.address, self.make_chunk(7, "x", 4, 8).encode(), KIND_DATA
        )
        with pytest.raises(TransportError):
            collector.collect(9, "z", PHASE_REQUEST, 1, timeout=0.1)
        assert collector.pending_entries() == 0

    def test_concurrent_collects_for_different_requests(self):
        import threading as _threading

        fabric = Fabric()
        port, sender = fabric.open_port(), fabric.open_port()
        collector = ChunkCollector(port)
        results = {}

        def collect(rid):
            results[rid] = collector.collect(
                rid, "x", PHASE_REQUEST, 2, timeout=10
            )

        threads = [
            _threading.Thread(target=collect, args=(rid,))
            for rid in (1, 2)
        ]
        for t in threads:
            t.start()
        # Interleave the two requests' chunks adversarially.
        for rid, lo, hi in [(2, 4, 8), (1, 0, 4), (2, 0, 4), (1, 4, 8)]:
            sender.send(
                port.address,
                self.make_chunk(rid, "x", lo, hi).encode(),
                KIND_DATA,
            )
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads)
        for rid in (1, 2):
            assert len(results[rid]) == 2
            assert all(c.request_id == rid for c in results[rid])
        assert collector.pending_entries() == 0


class TestReplyDemux:
    def make_reply(self, rid):
        from repro.orb.request import ReplyMessage

        return ReplyMessage(rid).encode()

    def test_out_of_order_replies_reach_their_waiters(self):
        from repro.orb.transfer import ReplyDemux
        from repro.orb.transport import KIND_REPLY

        fabric = Fabric()
        port, sender = fabric.open_port(), fabric.open_port()
        demux = ReplyDemux(port)
        for rid in (3, 1, 2):  # reverse-ish of the wait order
            sender.send(port.address, self.make_reply(rid), KIND_REPLY)
        for rid in (1, 2, 3):
            assert demux.wait(rid, timeout=5).request_id == rid
        assert demux.outstanding() == 0

    def test_poll_returns_filed_reply_once(self):
        from repro.orb.transfer import ReplyDemux
        from repro.orb.transport import KIND_REPLY

        fabric = Fabric()
        port, sender = fabric.open_port(), fabric.open_port()
        demux = ReplyDemux(port)
        sender.send(port.address, self.make_reply(9), KIND_REPLY)
        sender.send(port.address, self.make_reply(5), KIND_REPLY)
        assert demux.wait(5, timeout=5).request_id == 5
        assert demux.poll(9).request_id == 9
        assert demux.poll(9) is None

    def test_discarded_request_reply_is_dropped(self):
        from repro.orb.transfer import ReplyDemux
        from repro.orb.transport import KIND_REPLY, TransportError

        fabric = Fabric()
        port, sender = fabric.open_port(), fabric.open_port()
        demux = ReplyDemux(port)
        demux.discard(4)
        sender.send(port.address, self.make_reply(4), KIND_REPLY)
        sender.send(port.address, self.make_reply(6), KIND_REPLY)
        assert demux.wait(6, timeout=5).request_id == 6
        # The retired reply was dropped on arrival, not filed.
        assert demux.outstanding() == 0
        with pytest.raises(TransportError):
            demux.wait(4, timeout=0.1)
