"""Transport fabric unit tests."""

import threading

import pytest

from repro.orb.transport import (
    Fabric,
    KIND_DATA,
    KIND_REPLY,
    KIND_REQUEST,
    TransportError,
)


class TestPorts:
    def test_send_recv(self):
        fabric = Fabric()
        a, b = fabric.open_port("a"), fabric.open_port("b")
        a.send(b.address, b"hello", KIND_REQUEST)
        src, kind, payload = b.recv()
        assert (src, kind, payload) == (a.address, KIND_REQUEST, b"hello")

    def test_addresses_are_unique(self):
        fabric = Fabric()
        ports = [fabric.open_port() for _ in range(10)]
        ids = {p.address.port_id for p in ports}
        assert len(ids) == 10

    def test_kind_filtering(self):
        fabric = Fabric()
        a, b = fabric.open_port(), fabric.open_port()
        a.send(b.address, b"d", KIND_DATA)
        a.send(b.address, b"r", KIND_REPLY)
        assert b.recv(kind=KIND_REPLY)[2] == b"r"
        assert b.recv(kind=KIND_DATA)[2] == b"d"

    def test_fifo_within_kind(self):
        fabric = Fabric()
        a, b = fabric.open_port(), fabric.open_port()
        for i in range(5):
            a.send(b.address, bytes([i]), KIND_DATA)
        got = [b.recv(kind=KIND_DATA)[2][0] for _ in range(5)]
        assert got == list(range(5))

    def test_try_recv(self):
        fabric = Fabric()
        a, b = fabric.open_port(), fabric.open_port()
        assert b.try_recv() is None
        a.send(b.address, b"x")
        assert b.try_recv()[2] == b"x"

    def test_pending_count(self):
        fabric = Fabric()
        a, b = fabric.open_port(), fabric.open_port()
        assert b.pending() == 0
        a.send(b.address, b"1")
        a.send(b.address, b"2")
        assert b.pending() == 2

    def test_recv_timeout(self):
        fabric = Fabric()
        port = fabric.open_port()
        with pytest.raises(TransportError, match="timed out"):
            port.recv(timeout=0.05)

    def test_recv_blocks_until_delivery(self):
        fabric = Fabric()
        a, b = fabric.open_port(), fabric.open_port()
        results = []
        t = threading.Thread(
            target=lambda: results.append(b.recv(timeout=5)[2])
        )
        t.start()
        a.send(b.address, b"late")
        t.join(5)
        assert results == [b"late"]

    def test_only_bytes_cross_the_fabric(self):
        fabric = Fabric()
        a, b = fabric.open_port(), fabric.open_port()
        with pytest.raises(TransportError, match="bytes"):
            a.send(b.address, {"not": "bytes"})  # type: ignore[arg-type]

    def test_send_to_unknown_port(self):
        fabric = Fabric()
        a = fabric.open_port()
        b = fabric.open_port()
        b_addr = b.address
        b.close()
        with pytest.raises(TransportError, match="no port"):
            a.send(b_addr, b"x")

    def test_closed_port_recv_raises(self):
        fabric = Fabric()
        port = fabric.open_port()
        port.close()
        with pytest.raises(TransportError, match="closed"):
            port.recv(timeout=1)

    def test_close_releases_blocked_receiver(self):
        fabric = Fabric()
        port = fabric.open_port()
        failures = []

        def receiver():
            try:
                port.recv(timeout=10)
            except TransportError:
                failures.append(True)

        t = threading.Thread(target=receiver)
        t.start()
        port.close()
        t.join(5)
        assert failures == [True]

    def test_port_count_tracks_lifecycle(self):
        fabric = Fabric()
        a = fabric.open_port()
        assert fabric.open_port_count() == 1
        a.close()
        assert fabric.open_port_count() == 0


class TestMeter:
    def test_meter_observes_all_traffic(self):
        fabric = Fabric()
        seen = []
        fabric.add_meter(
            lambda src, dst, kind, n: seen.append((kind, n))
        )
        a, b = fabric.open_port(), fabric.open_port()
        a.send(b.address, b"12345", KIND_DATA)
        assert seen == [(KIND_DATA, 5)]

    def test_meter_removal(self):
        fabric = Fabric()
        seen = []
        meter = lambda *a: seen.append(a)  # noqa: E731
        fabric.add_meter(meter)
        fabric.remove_meter(meter)
        a, b = fabric.open_port(), fabric.open_port()
        a.send(b.address, b"x")
        assert seen == []

    def test_channel_helper(self):
        fabric = Fabric()
        channel = fabric.channel("left", "right")
        left, right = channel.ends()
        left.send(right.address, b"ping")
        assert right.recv()[2] == b"ping"
