"""Naming service and object-reference tests."""

import pytest

from repro.orb.naming import NamingError, NamingService
from repro.orb.reference import ObjectReference
from repro.orb.transport import PortAddress


def make_ref(key="obj", nports=0):
    return ObjectReference(
        object_key=key,
        repo_id=f"IDL:{key}:1.0",
        request_port=PortAddress(1, "req"),
        data_ports=tuple(
            PortAddress(10 + i, f"d{i}") for i in range(nports)
        ),
        param_templates=(
            (("diffusion", "darray"), ("proportions", (2, 4))),
        ),
    )


class TestObjectReference:
    def test_nthreads(self):
        assert make_ref().nthreads == 1
        assert make_ref(nports=4).nthreads == 4

    def test_multiport_capable(self):
        assert not make_ref().multiport_capable
        assert make_ref(nports=2).multiport_capable

    def test_template_lookup(self):
        ref = make_ref()
        assert ref.template_spec("diffusion", "darray") == (
            "proportions",
            (2, 4),
        )
        assert ref.template_spec("diffusion", "other") is None

    def test_ior_roundtrip(self):
        ref = make_ref(nports=3)
        text = ref.ior()
        assert text.startswith("IOR:")
        assert ObjectReference.from_ior(text) == ref

    def test_malformed_ior(self):
        with pytest.raises(ValueError, match="not a stringified"):
            ObjectReference.from_ior("nope")
        with pytest.raises(ValueError, match="malformed"):
            ObjectReference.from_ior("IOR:zzzz")

    def test_ior_must_contain_reference(self):
        import binascii

        fake = "IOR:" + binascii.hexlify(b"\x01not a reference").decode()
        with pytest.raises(ValueError, match="malformed"):
            ObjectReference.from_ior(fake)

    def test_ior_is_not_pickle(self):
        """The stringified form is pure CDR — parsing attacker-supplied
        IORs can never execute code."""
        import binascii

        blob = binascii.unhexlify(make_ref(nports=2).ior()[4:])
        assert b"pickle" not in blob
        # CDR streams start with the byte-order flag, not pickle's
        # protocol opcode \x80.
        assert blob[0] in (0, 1)


class TestNaming:
    def test_bind_resolve(self):
        naming = NamingService()
        ref = make_ref()
        naming.bind("example", ref)
        assert naming.resolve("example") is ref

    def test_duplicate_bind_rejected(self):
        naming = NamingService()
        naming.bind("example", make_ref())
        with pytest.raises(NamingError, match="already bound"):
            naming.bind("example", make_ref())

    def test_rebind_replaces(self):
        naming = NamingService()
        naming.bind("example", make_ref("a"))
        newer = make_ref("b")
        naming.rebind("example", newer)
        assert naming.resolve("example") is newer

    def test_unknown_name(self):
        with pytest.raises(NamingError, match="no object"):
            NamingService().resolve("ghost")

    def test_host_scoping(self):
        naming = NamingService()
        ref1, ref2 = make_ref("a"), make_ref("b")
        naming.bind("example", ref1, host="host1")
        naming.bind("example", ref2, host="host2")
        assert naming.resolve("example", "host1") is ref1
        assert naming.resolve("example", "host2") is ref2

    def test_ambiguous_without_host(self):
        naming = NamingService()
        naming.bind("example", make_ref("a"), host="host1")
        naming.bind("example", make_ref("b"), host="host2")
        with pytest.raises(NamingError, match="several hosts"):
            naming.resolve("example")

    def test_single_registration_resolves_without_host(self):
        naming = NamingService()
        naming.bind("example", make_ref(), host="host1")
        assert naming.resolve("example") is not None

    def test_unknown_host(self):
        naming = NamingService()
        naming.bind("example", make_ref(), host="host1")
        with pytest.raises(NamingError, match="host"):
            naming.resolve("example", "other")

    def test_unbind(self):
        naming = NamingService()
        naming.bind("example", make_ref())
        naming.unbind("example")
        with pytest.raises(NamingError):
            naming.resolve("example")
        with pytest.raises(NamingError):
            naming.unbind("example")

    def test_unbind_is_host_scoped(self):
        naming = NamingService()
        naming.bind("example", make_ref("a"), host="host1")
        naming.bind("example", make_ref("b"), host="host2")
        naming.unbind("example", host="host1")
        # The other host's registration survives and now resolves
        # unambiguously.
        assert naming.resolve("example").object_key == "b"
        # The error names the host that had nothing bound.
        with pytest.raises(
            NamingError, match="no object bound as 'example' on host "
            "'host1'"
        ):
            naming.unbind("example", host="host1")

    def test_unbind_error_without_host_omits_the_host_clause(self):
        with pytest.raises(
            NamingError, match="no object bound as 'ghost'$"
        ):
            NamingService().unbind("ghost")

    def test_resolve_after_unbind_equals_never_bound(self):
        # No tombstones: an unbound name fails exactly like a name
        # that never existed, and is immediately rebindable.
        naming = NamingService()
        naming.bind("example", make_ref("old"))
        naming.unbind("example")
        with pytest.raises(NamingError) as unbound_err:
            naming.resolve("example")
        with pytest.raises(NamingError) as never_err:
            naming.resolve("example-never-bound")
        assert str(unbound_err.value).replace(
            "example", "X"
        ) == str(never_err.value).replace("example-never-bound", "X")
        naming.bind("example", make_ref("new"))
        assert naming.resolve("example").object_key == "new"

    def test_rebind_binds_fresh_names_too(self):
        # rebind is bind-or-replace: it does not require an existing
        # registration.
        naming = NamingService()
        naming.rebind("example", make_ref("a"))
        assert naming.resolve("example").object_key == "a"

    def test_ambiguity_clears_when_one_host_unbinds(self):
        naming = NamingService()
        naming.bind("example", make_ref("a"), host="host1")
        naming.bind("example", make_ref("b"), host="host2")
        with pytest.raises(NamingError, match="several hosts"):
            naming.resolve("example")
        naming.unbind("example", host="host2")
        assert naming.resolve("example").object_key == "a"

    def test_empty_name_rejected(self):
        with pytest.raises(NamingError, match="empty"):
            NamingService().bind("", make_ref())

    def test_names_listing(self):
        naming = NamingService()
        naming.bind("b", make_ref())
        naming.bind("a", make_ref(), host="h")
        assert naming.names() == [("a", "h"), ("b", "")]
