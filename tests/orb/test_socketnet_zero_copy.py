"""Zero-copy transport behaviours of :class:`SocketFabric`.

Covers the reader-side drop policy (malformed/oversized frames are
counted, metered, and do not kill the connection), the pooled-versus-
dedicated receive-buffer split, vectored multi-segment writes, and the
connect-outside-the-lock race in ``_send_remote``.
"""

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.orb.socketnet import (
    DROP_ADDRESS,
    _MAX_FRAME,
    _POOL_BUFFER_SIZE,
    SocketFabric,
    SocketPortAddress,
)
from repro.orb.transport import KIND_DATA

_LENGTH = struct.Struct(">I")


@pytest.fixture()
def fabric():
    with SocketFabric("zc-fabric") as fabric:
        yield fabric


def _raw_frame(dest, payload: bytes) -> bytes:
    """A well-formed wire frame addressed to ``dest``."""
    src = SocketPortAddress("127.0.0.1", 1, 99, "raw-sender")
    segments = SocketFabric._encode_frame(
        src, dest, KIND_DATA, payload, len(payload)
    )
    body = b"".join(bytes(s) for s in segments)
    return _LENGTH.pack(len(body)) + body


def _wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.01)


class TestDropPolicy:
    def test_zero_length_frame_is_counted_and_skipped(self, fabric):
        """A zero-length frame is dropped but the connection — and the
        frames after it — survive."""
        seen = []
        fabric.add_meter(
            lambda src, dest, kind, nbytes: seen.append(
                (src, dest, kind, nbytes)
            )
        )
        port = fabric.open_port("victim")
        with socket.create_connection(
            (fabric.host, fabric.tcp_port), timeout=5
        ) as raw:
            raw.sendall(_LENGTH.pack(0))  # malformed: zero length
            raw.sendall(_raw_frame(port.address, b"still alive"))
            src, kind, payload = port.recv(timeout=5)
        assert bytes(payload) == b"still alive"
        assert fabric.dropped_frames == 1
        assert (DROP_ADDRESS, DROP_ADDRESS, "drop", 0) in seen

    def test_oversized_frame_is_counted(self, fabric):
        declared = _MAX_FRAME + 1
        with socket.create_connection(
            (fabric.host, fabric.tcp_port), timeout=5
        ) as raw:
            raw.sendall(_LENGTH.pack(declared))
        _wait_for(lambda: fabric.dropped_frames == 1)

    def test_oversized_frame_is_drained_not_buffered(self, fabric):
        """The declared bytes are discarded so the stream stays framed
        for the next frame on the same connection."""
        port = fabric.open_port("after-drain")
        junk_len = _MAX_FRAME + 7  # larger than any drain chunk
        with socket.create_connection(
            (fabric.host, fabric.tcp_port), timeout=5
        ) as raw:
            raw.sendall(_LENGTH.pack(junk_len))
            chunk = bytes(1 << 20)
            remaining = junk_len
            while remaining:
                n = min(remaining, len(chunk))
                raw.sendall(chunk[:n])
                remaining -= n
            raw.sendall(_raw_frame(port.address, b"resynced"))
            _src, _kind, payload = port.recv(timeout=30)
        assert bytes(payload) == b"resynced"
        assert fabric.dropped_frames == 1

    def test_drops_accumulate(self, fabric):
        with socket.create_connection(
            (fabric.host, fabric.tcp_port), timeout=5
        ) as raw:
            raw.sendall(_LENGTH.pack(0) * 3)
        _wait_for(lambda: fabric.dropped_frames == 3)


class TestReceiveBuffers:
    def test_small_payload_is_detached_bytes(self, fabric):
        """Pool-sized frames are copied out so the pooled buffer can be
        recycled immediately."""
        with SocketFabric("peer") as peer:
            sender = peer.open_port("s")
            receiver = fabric.open_port("r")
            sender.send(receiver.address, b"x" * 512, KIND_DATA)
            _src, _kind, payload = receiver.recv(timeout=5)
        assert isinstance(payload, bytes)
        assert payload == b"x" * 512

    def test_large_payload_arrives_as_readonly_view(self, fabric):
        """Above the pool bound the payload keeps its dedicated receive
        buffer and is delivered as a zero-copy read-only view."""
        big = np.arange(
            (_POOL_BUFFER_SIZE * 4) // 8, dtype=np.float64
        )
        with SocketFabric("peer") as peer:
            sender = peer.open_port("s")
            receiver = fabric.open_port("r")
            sender.send(
                receiver.address, memoryview(big).cast("B"), KIND_DATA
            )
            _src, _kind, payload = receiver.recv(timeout=5)
        assert isinstance(payload, memoryview)
        assert payload.readonly
        np.testing.assert_array_equal(
            np.frombuffer(payload, dtype=np.float64), big
        )

    def test_pooled_buffer_reuse_does_not_corrupt(self, fabric):
        """Back-to-back small frames on one connection must each come
        out intact even though they share pooled buffers."""
        with SocketFabric("peer") as peer:
            sender = peer.open_port("s")
            receiver = fabric.open_port("r")
            frames = [bytes([i]) * 1024 for i in range(16)]
            for frame in frames:
                sender.send(receiver.address, frame, KIND_DATA)
            got = [receiver.recv(timeout=5)[2] for _ in frames]
        assert got == frames


class TestVectoredSend:
    def test_multi_segment_payload_roundtrips(self, fabric):
        """A payload given as a buffer list rides the vectored write
        and arrives byte-identical to the concatenation."""
        parts = [
            b"head",
            memoryview(np.arange(1000, dtype=np.float64)).cast("B"),
            b"tail",
        ]
        flat = b"".join(bytes(p) for p in parts)
        with SocketFabric("peer") as peer:
            sender = peer.open_port("s")
            receiver = fabric.open_port("r")
            sender.send(receiver.address, parts, KIND_DATA)
            _src, _kind, payload = receiver.recv(timeout=5)
        assert bytes(payload) == flat

    def test_empty_segments_are_skipped(self, fabric):
        with SocketFabric("peer") as peer:
            sender = peer.open_port("s")
            receiver = fabric.open_port("r")
            sender.send(
                receiver.address, [b"", b"payload", b""], KIND_DATA
            )
            assert bytes(receiver.recv(timeout=5)[2]) == b"payload"


class TestConcurrentConnect:
    def test_racing_first_sends_share_one_connection(self, fabric):
        """Many threads race the first send to one endpoint; the
        double-checked insert must leave exactly one cached connection
        and lose no frames."""
        with SocketFabric("peer") as peer:
            receiver = fabric.open_port("r")
            senders = [peer.open_port(f"s{i}") for i in range(8)]
            barrier = threading.Barrier(len(senders))
            errors = []

            def blast(port, tag):
                barrier.wait()
                try:
                    port.send(receiver.address, tag, KIND_DATA)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=blast, args=(p, bytes([i]) * 32))
                for i, p in enumerate(senders)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            assert not errors
            got = sorted(
                bytes(receiver.recv(timeout=5)[2]) for _ in senders
            )
            assert got == sorted(bytes([i]) * 32 for i in range(8))
            endpoint = (fabric.host, fabric.tcp_port)
            assert list(peer._connections) == [endpoint]
