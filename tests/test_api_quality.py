"""Meta tests on the library's public surface: documentation coverage
and import hygiene."""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro.cdr",
    "repro.core",
    "repro.dist",
    "repro.idl",
    "repro.orb",
    "repro.rts",
    "repro.simnet",
    "repro.bench",
]


def iter_modules():
    for name in SUBPACKAGES:
        package = importlib.import_module(name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.name.startswith("_"):
                continue
            yield importlib.import_module(f"{name}.{info.name}")


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            m.__name__ for m in iter_modules() if not m.__doc__
        ]
        assert undocumented == []

    def test_every_public_class_is_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_every_public_function_is_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []


class TestExports:
    def test_top_level_lazy_exports_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert getattr(repro, name) is not None

    def test_top_level_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_dir_covers_all(self):
        assert set(repro.__all__) <= set(dir(repro))

    def test_subpackage_all_lists_resolve(self):
        for name in SUBPACKAGES:
            module = importlib.import_module(name)
            for export in getattr(module, "__all__", []):
                assert hasattr(module, export), f"{name}.{export}"
