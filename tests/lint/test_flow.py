"""The interprocedural collective-flow rules (PD210–PD212).

Unit tests pin the analyzer's reporting behavior on the shapes it
exists for; the hypothesis block generates whole families of
rank-guarded call graphs and asserts the no-false-positive
guarantee: agreement-reconciled functions, collectively-aligned
branches, and uncertain control flow never produce a flow
diagnostic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import lint_python_source

FLOW_RULES = frozenset(("PD210", "PD211", "PD212"))


def flow_rules(source):
    return [
        (d.rule, d.line)
        for d in lint_python_source(source)
        if d.rule in FLOW_RULES
    ]


# ---------------------------------------------------------------------------
# PD210
# ---------------------------------------------------------------------------


def test_collective_two_calls_deep_is_found():
    source = (
        "def inner(rts):\n"
        "    rts.synchronize()\n"
        "def outer(rts):\n"
        "    inner(rts)\n"
        "def main(rank, rts):\n"
        "    if rank == 0:\n"
        "        outer(rts)\n"
    )
    assert flow_rules(source) == [("PD210", 7)]


def test_message_names_the_call_chain():
    source = (
        "def inner(rts):\n"
        "    rts.synchronize()\n"
        "def outer(rts):\n"
        "    inner(rts)\n"
        "def main(rank, rts):\n"
        "    if rank == 0:\n"
        "        outer(rts)\n"
    )
    [diag] = [
        d
        for d in lint_python_source(source)
        if d.rule == "PD210"
    ]
    assert "outer -> inner" in diag.message


def test_both_sides_calling_same_collective_is_clean():
    source = (
        "def helper(rts):\n"
        "    rts.synchronize()\n"
        "def main(rank, rts):\n"
        "    if rank == 0:\n"
        "        helper(rts)\n"
        "    else:\n"
        "        helper(rts)\n"
    )
    assert flow_rules(source) == []


def test_different_helpers_same_collective_sequence_is_clean():
    source = (
        "def a(rts):\n"
        "    rts.synchronize()\n"
        "def b(rts):\n"
        "    rts.synchronize()\n"
        "def main(rank, rts):\n"
        "    if rank == 0:\n"
        "        a(rts)\n"
        "    else:\n"
        "        b(rts)\n"
    )
    assert flow_rules(source) == []


def test_helpers_with_different_collectives_diverge():
    source = (
        "def a(orb, obj):\n"
        "    orb.invoke_all(obj, 'x', ())\n"
        "def b(rts):\n"
        "    rts.synchronize()\n"
        "def main(rank, orb, rts, obj):\n"
        "    if rank == 0:\n"
        "        a(orb, obj)\n"
        "    else:\n"
        "        b(rts)\n"
    )
    assert [r for r, _ in flow_rules(source)] == ["PD210"]


def test_rank_loop_around_collective_call_is_found():
    source = (
        "def helper(rts):\n"
        "    rts.synchronize()\n"
        "def main(rank, rts):\n"
        "    for _ in range(rank):\n"
        "        helper(rts)\n"
    )
    assert [r for r, _ in flow_rules(source)] == ["PD210"]


def test_unresolved_call_is_assumed_collective_free():
    # some_library.poll is not defined in this module: the analyzer
    # must not guess (that is the documented intraprocedural
    # fallback).
    source = (
        "def main(rank, lib):\n"
        "    if rank == 0:\n"
        "        lib.poll()\n"
    )
    assert flow_rules(source) == []


def test_direct_guarded_collective_is_left_to_pd201():
    source = (
        "def main(rank, rts):\n"
        "    if rank == 0:\n"
        "        rts.synchronize()\n"
    )
    rules = [d.rule for d in lint_python_source(source)]
    assert "PD201" in rules
    assert not FLOW_RULES.intersection(rules)


def test_agreement_in_function_suppresses_pd210():
    source = (
        "from repro.ft.agreement import agree\n"
        "def helper(rts):\n"
        "    rts.synchronize()\n"
        "def main(rank, rts):\n"
        "    if rank == 0:\n"
        "        helper(rts)\n"
        "    agree(rts, None)\n"
    )
    assert flow_rules(source) == []


def test_transitive_agreement_suppresses_pd210():
    # The agreement happens inside a called local function: the
    # suppression must propagate through the call graph too.
    source = (
        "from repro.ft.agreement import agree\n"
        "def helper(rts):\n"
        "    rts.synchronize()\n"
        "def reconcile(rts):\n"
        "    agree(rts, None)\n"
        "def main(rank, rts):\n"
        "    if rank == 0:\n"
        "        helper(rts)\n"
        "    reconcile(rts)\n"
    )
    assert flow_rules(source) == []


def test_suppression_comment_silences_pd210():
    source = (
        "def helper(rts):\n"
        "    rts.synchronize()\n"
        "def main(rank, rts):\n"
        "    if rank == 0:\n"
        "        helper(rts)  # pardis-lint: disable=PD210\n"
    )
    assert flow_rules(source) == []


# ---------------------------------------------------------------------------
# PD211
# ---------------------------------------------------------------------------


def test_collective_via_call_in_handler_is_found():
    source = (
        "def helper(rts):\n"
        "    rts.synchronize()\n"
        "def main(rts, obj):\n"
        "    try:\n"
        "        obj.step()\n"
        "    except RuntimeError:\n"
        "        helper(rts)\n"
    )
    assert flow_rules(source) == [("PD211", 7)]


def test_agreement_first_in_handler_is_clean():
    source = (
        "from repro.ft.agreement import agree_failure\n"
        "def main(rts, obj):\n"
        "    try:\n"
        "        obj.step()\n"
        "    except RuntimeError:\n"
        "        agree_failure(rts, True)\n"
        "        rts.synchronize()\n"
    )
    assert flow_rules(source) == []


def test_collective_in_try_body_is_clean():
    source = (
        "def main(rts, obj):\n"
        "    try:\n"
        "        rts.synchronize()\n"
        "    except RuntimeError:\n"
        "        pass\n"
    )
    assert flow_rules(source) == []


def test_collective_in_finally_is_clean():
    # finally runs on every rank, exception or not.
    source = (
        "def main(rts, obj):\n"
        "    try:\n"
        "        obj.step()\n"
        "    finally:\n"
        "        rts.synchronize()\n"
    )
    assert flow_rules(source) == []


# ---------------------------------------------------------------------------
# PD212
# ---------------------------------------------------------------------------


def test_early_raise_also_reports():
    source = (
        "def helper(rts):\n"
        "    rts.synchronize()\n"
        "def main(rank, rts):\n"
        "    if rank != 0:\n"
        "        raise ValueError('follower')\n"
        "    helper(rts)\n"
    )
    assert flow_rules(source) == [("PD212", 5)]


def test_early_return_before_any_collective_is_clean():
    source = (
        "def main(rank, obj):\n"
        "    if rank != 0:\n"
        "        return None\n"
        "    return obj.name\n"
    )
    assert flow_rules(source) == []


def test_both_sides_returning_is_clean_when_aligned():
    source = (
        "def helper(rts):\n"
        "    rts.synchronize()\n"
        "def main(rank, rts):\n"
        "    if rank == 0:\n"
        "        helper(rts)\n"
        "        return 'leader'\n"
        "    helper(rts)\n"
        "    return 'follower'\n"
    )
    assert flow_rules(source) == []


# ---------------------------------------------------------------------------
# Conservatism on uncertain flow
# ---------------------------------------------------------------------------


def test_rank_independent_branch_difference_is_clean():
    # The arms differ, but the test does not mention a rank: the
    # branch is assumed collectively consistent (documented limit).
    source = (
        "def helper(rts):\n"
        "    rts.synchronize()\n"
        "def main(flag, rts):\n"
        "    if flag:\n"
        "        helper(rts)\n"
    )
    assert flow_rules(source) == []


def test_loop_with_break_degrades_to_uncertain():
    source = (
        "def helper(rts):\n"
        "    rts.synchronize()\n"
        "def main(rank, rts, items):\n"
        "    if rank == 0:\n"
        "        for item in items:\n"
        "            if item.done:\n"
        "                break\n"
        "            helper(rts)\n"
    )
    assert flow_rules(source) == []


def test_recursive_function_degrades_to_uncertain():
    source = (
        "def walk(rts, n):\n"
        "    if n:\n"
        "        rts.synchronize()\n"
        "        walk(rts, n - 1)\n"
        "def main(rank, rts):\n"
        "    if rank == 0:\n"
        "        walk(rts, 3)\n"
    )
    assert flow_rules(source) == []


def test_match_statement_is_opaque():
    source = (
        "def helper(rts):\n"
        "    rts.synchronize()\n"
        "def main(rank, rts):\n"
        "    if rank == 0:\n"
        "        match rank:\n"
        "            case 0:\n"
        "                helper(rts)\n"
    )
    assert flow_rules(source) == []


# ---------------------------------------------------------------------------
# Hypothesis: the no-false-positive guarantee
# ---------------------------------------------------------------------------

_COLLECTIVES = ("rts.synchronize()", "orb.invoke_all(obj, 'op', ())")


@st.composite
def reconciled_programs(draw):
    """A rank-guarded call graph that always reconciles via the
    agreement API — legal by construction, whatever diverges."""
    n_helpers = draw(st.integers(min_value=1, max_value=3))
    helpers = []
    for i in range(n_helpers):
        body = draw(st.sampled_from(_COLLECTIVES + ("pass",)))
        helpers.append(
            f"def helper_{i}(orb, rts, obj):\n    {body}\n"
        )
    guarded = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_helpers - 1),
            min_size=0,
            max_size=3,
        )
    )
    guard_test = draw(
        st.sampled_from(("rank == 0", "rank != 0", "rank > 1"))
    )
    calls = "".join(
        f"        helper_{i}(orb, rts, obj)\n" for i in guarded
    ) or "        pass\n"
    main = (
        "def main(rank, orb, rts, obj):\n"
        f"    if {guard_test}:\n"
        f"{calls}"
        "    return agree(rts, None)\n"
    )
    return (
        "from repro.ft.agreement import agree\n"
        + "".join(helpers)
        + main
    )


@st.composite
def aligned_programs(draw):
    """A rank-guarded program whose arms issue identical collective
    sequences — aligned by construction."""
    n = draw(st.integers(min_value=0, max_value=3))
    seq = draw(
        st.lists(
            st.sampled_from(_COLLECTIVES), min_size=n, max_size=n
        )
    )
    helper = "def helper(orb, rts, obj):\n" + (
        "".join(f"    {c}\n" for c in seq) or "    pass\n"
    )
    arm = "        helper(orb, rts, obj)\n"
    main = (
        "def main(rank, orb, rts, obj):\n"
        "    if rank == 0:\n"
        f"{arm}"
        "    else:\n"
        f"{arm}"
        "    helper(orb, rts, obj)\n"
    )
    return helper + main


@given(reconciled_programs())
@settings(max_examples=80, deadline=None)
def test_agreement_reconciled_graphs_never_flag(source):
    assert flow_rules(source) == []


@given(aligned_programs())
@settings(max_examples=60, deadline=None)
def test_aligned_graphs_never_flag(source):
    assert flow_rules(source) == []
