"""Inline suppression: ``# pardis-lint: disable=<rule>``."""

from repro.lint import lint_idl_source, lint_python_source
from repro.lint.suppress import is_suppressed, suppression_map


def test_trailing_comment_suppresses_its_own_line():
    source = (
        "typedef dsequence<double> d;\n"
        "interface i { void f(in d x); }; "
        "// pardis-lint: disable=PD101\n"
    )
    assert lint_idl_source(source) == []


def test_standalone_comment_suppresses_next_line():
    source = (
        "def fire(proxy, data):\n"
        "    # pardis-lint: disable=unconsumed-future\n"
        "    proxy.solve_nb(data)\n"
    )
    assert lint_python_source(source) == []


def test_rule_names_and_ids_are_interchangeable():
    by_id = suppression_map("# pardis-lint: disable=PD202\nx = 1\n")
    by_name = suppression_map(
        "# pardis-lint: disable=unconsumed-future\nx = 1\n"
    )
    assert by_id == by_name == {2: frozenset({"PD202"})}


def test_disable_all_suppresses_everything():
    source = (
        "def fire(proxy, data):\n"
        "    proxy.solve_nb(data)  # pardis-lint: disable=all\n"
    )
    assert lint_python_source(source) == []


def test_unrelated_rule_does_not_suppress():
    source = (
        "def fire(proxy, data):\n"
        "    proxy.solve_nb(data)  # pardis-lint: disable=PD203\n"
    )
    assert any(
        d.rule == "PD202" for d in lint_python_source(source)
    )


def test_is_suppressed_matches_line_and_rule():
    suppressed = {4: frozenset({"PD101"})}
    assert is_suppressed(suppressed, 4, "PD101")
    assert not is_suppressed(suppressed, 4, "PD102")
    assert not is_suppressed(suppressed, 5, "PD101")
