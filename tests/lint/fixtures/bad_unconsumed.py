"""Fixture: futures dropped on the floor (PD202)."""


def fire_and_forget(proxy, data):
    proxy.solve_nb(data)


def assigned_but_ignored(proxy, data):
    future = proxy.solve_nb(data)
    return None
