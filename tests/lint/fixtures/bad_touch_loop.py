"""Fixture: touching futures inside the issue loop (PD203)."""


def gather(proxy, size, chunks):
    results = []
    for rank in range(size):
        future = proxy.solve_nb(chunks[rank])
        results.append(future.touch())
    return results
