"""Fixture: a rank-guarded proxy invocation with no agreement (PD208)."""


def probe(proxy_cls, runtime, rank):
    solver = proxy_cls._spmd_bind("solver", runtime)
    if rank == 0:
        status = solver.status()
    else:
        status = None
    return status
