"""Fixture: a rank-guarded early return skips a later collective
(PD212)."""


def shutdown(rts, obj):
    rts.synchronize()


def main(rts, obj, rank):
    if rank != 0:
        return None
    shutdown(rts, obj)
    return obj
