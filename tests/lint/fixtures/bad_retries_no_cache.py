"""Fixture: retries against a server without a reply cache (PD209)."""

from repro.ft.policy import FtPolicy

RETRYING = FtPolicy(max_retries=3)


def main(orb, proxy_cls, runtime, factory):
    orb.serve("ledger", factory)
    return proxy_cls._bind("ledger", runtime, ft_policy=RETRYING)
