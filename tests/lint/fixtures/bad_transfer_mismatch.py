"""Fixture: multiport bind against a centralized-only server (PD204)."""


def serve_and_bind(orb, proxy_cls, runtime, factory):
    orb.serve("grid", factory, nthreads=4, multiport=False)
    return proxy_cls._spmd_bind("grid", runtime, transfer="multiport")
