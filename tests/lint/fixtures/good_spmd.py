"""Fixture: a well-formed SPMD client (lints clean)."""

from repro.idl.compiler import compile_idl

IDL = """
typedef dsequence<double, 128> slab;

interface worker {
  double reduce(in slab data);
};
"""


def main(proxy_cls, runtime, chunks):
    compile_idl(IDL, module_name="lint_good_idl")
    proxy = proxy_cls._spmd_bind(
        "worker", runtime, transfer="centralized"
    )
    futures = [proxy.reduce_nb(chunk) for chunk in chunks]
    return [future.touch() for future in futures]
