"""Fixture: a collective hidden one call deep behind a rank guard
(PD210) — the shape PD201 cannot see."""


def refresh(orb, obj):
    return orb.invoke_all(obj, "refresh", ())


def main(orb, obj, rank):
    if rank == 0:
        refresh(orb, obj)
    return obj
