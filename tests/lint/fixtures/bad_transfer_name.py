"""Fixture: a transfer method that does not exist (PD205)."""


def connect(proxy_cls, runtime):
    return proxy_cls._spmd_bind("grid", runtime, transfer="broadcast")
