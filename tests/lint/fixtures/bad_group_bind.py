"""Fixture: group bindings whose failover never engages (PD213)."""

from repro.ft.policy import FtPolicy

FAIL_FAST = FtPolicy(deadline_ms=500.0)


def main(proxy_cls, runtime):
    bare = proxy_cls._group_bind("workers", runtime)
    named = proxy_cls._group_bind(
        "workers", runtime, ft_policy=FAIL_FAST
    )
    inline = proxy_cls._group_bind(
        "workers", runtime, ft_policy=FtPolicy(max_retries=0)
    )
    return bare, named, inline
