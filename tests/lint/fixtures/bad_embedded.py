"""Fixture: embedded IDL with a violation (offset mapping)."""

from repro.idl.compiler import compile_idl

IDL = """
typedef dsequence<double> stream;

interface feed {
  void consume(in stream s);
};
"""


def build():
    return compile_idl(IDL, module_name="lint_bad_embedded")
