"""Fixture: rank-dependent control flow that stays collectively
aligned (flow rules must stay silent).

Every shape here is legal: rank-dependent branches with identical
collective continuations, divergence reconciled through the
agreement API, and a guarded early return *before* any collective
work begins on either side.
"""

from repro.ft.agreement import agree_failure


def step(orb, obj):
    return orb.invoke_all(obj, "step", ())


def aligned(orb, obj, rank):
    # Both arms fall through to the same collective continuation.
    if rank == 0:
        log = "leader"
    else:
        log = "follower"
    step(orb, obj)
    return log


def reconciled(orb, rts, obj, rank):
    # Divergence is deliberate and agreement-reconciled.
    failure = None
    if rank == 0:
        try:
            step(orb, obj)
        except RuntimeError:
            failure = "down"
    return agree_failure(rts, failure)


def guarded_probe(obj, rank):
    # Early return with no collectives anywhere after it.
    if rank != 0:
        return None
    return obj.name
