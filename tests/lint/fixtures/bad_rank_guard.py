"""Fixture: a collective bind guarded by a rank test (PD201)."""


def connect(proxy_cls, runtime, rank):
    if rank == 0:
        proxy = proxy_cls._spmd_bind("solver", runtime)
    else:
        proxy = None
    return proxy
