"""Fixture: a collective issued from an exception handler without
failure agreement (PD211)."""


def recover(rts, obj):
    try:
        obj.step()
    except RuntimeError:
        rts.synchronize()
        obj.reset()
