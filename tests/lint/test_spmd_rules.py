"""Family-B rules: collective-correctness checks on SPMD programs,
plus embedded-IDL delegation."""

import pathlib

import pytest

from repro.lint import lint_file, lint_python_source

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"

PY_CASES = [
    ("bad_rank_guard.py", "PD201", 6, "hoist the collective"),
    ("bad_unconsumed.py", "PD202", 5, "assign the future"),
    ("bad_touch_loop.py", "PD203", 8, "issue every request first"),
    ("bad_transfer_mismatch.py", "PD204", 6, "multiport=True"),
    ("bad_transfer_name.py", "PD205", 5, "valid transfer methods"),
    ("bad_unagreed_invocation.py", "PD208", 7, "agree"),
    ("bad_retries_no_cache.py", "PD209", 10, "reply_cache_bytes"),
    ("bad_group_bind.py", "PD213", 9, "fail over to a sibling"),
    ("bad_divergent_helper.py", "PD210", 11, "same collective sequence"),
    ("bad_exception_collective.py", "PD211", 9, "reconcile the handler"),
    ("bad_early_return.py", "PD212", 11, "every rank reaches"),
]


@pytest.mark.parametrize("fixture,rule,line,hint", PY_CASES)
def test_fixture_violation_is_reported(fixture, rule, line, hint):
    path = str(FIXTURES / fixture)
    diagnostics = lint_file(path)
    matching = [d for d in diagnostics if d.rule == rule]
    assert matching, (
        f"{fixture}: expected {rule}, got "
        f"{[(d.rule, d.line) for d in diagnostics]}"
    )
    diag = matching[0]
    assert diag.line == line
    assert diag.file == path
    assert hint in diag.hint


def test_good_spmd_fixture_lints_clean():
    assert lint_file(str(FIXTURES / "good_spmd.py")) == []


def test_good_flow_fixture_lints_clean():
    assert lint_file(str(FIXTURES / "good_flow.py")) == []


def test_assigned_never_consumed_future_is_reported():
    diagnostics = lint_file(str(FIXTURES / "bad_unconsumed.py"))
    lines = [d.line for d in diagnostics if d.rule == "PD202"]
    assert lines == [5, 9]


def test_python_syntax_error_is_pd200():
    diagnostics = lint_python_source("def broken(:\n", "x.py")
    [diag] = diagnostics
    assert diag.rule == "PD200"
    assert diag.severity == "error"


def test_embedded_idl_lines_map_to_host_file():
    path = str(FIXTURES / "bad_embedded.py")
    diagnostics = lint_file(path)
    [diag] = [d for d in diagnostics if d.rule == "PD101"]
    # IDL literal opens on line 5; 'void consume' is IDL line 5,
    # so the host line is 5 + (5 - 1) = 9.
    assert diag.line == 9
    assert diag.file == path


def test_collective_outside_guard_is_clean():
    source = (
        "def connect(proxy_cls, runtime, rank):\n"
        "    proxy = proxy_cls._spmd_bind('solver', runtime)\n"
        "    if rank == 0:\n"
        "        print('bound')\n"
        "    return proxy\n"
    )
    assert lint_python_source(source) == []


def test_rank_guard_around_noncollective_is_clean():
    source = (
        "def announce(comm, rank, value):\n"
        "    if rank == 0:\n"
        "        comm.send(value, 1)\n"
    )
    assert lint_python_source(source) == []


def test_nested_function_resets_rank_guard():
    source = (
        "def make(proxy_cls, runtime, rank):\n"
        "    if rank == 0:\n"
        "        def later():\n"
        "            return proxy_cls._spmd_bind('s', runtime)\n"
        "        return later\n"
        "    return None\n"
    )
    assert [
        d
        for d in lint_python_source(source)
        if d.rule == "PD201"
    ] == []


def test_while_rank_guard_is_detected():
    source = (
        "def spin(obj, rank):\n"
        "    while rank != 0:\n"
        "        obj.invoke_all('step')\n"
    )
    assert any(
        d.rule == "PD201" for d in lint_python_source(source)
    )


def test_event_wait_is_not_touch_in_rank_loop():
    source = (
        "def pause(events, size):\n"
        "    for i in range(size):\n"
        "        events[i].wait()\n"
    )
    assert lint_python_source(source) == []


def test_dynamic_transfer_value_is_not_checked():
    source = (
        "def connect(proxy_cls, runtime, method):\n"
        "    return proxy_cls._spmd_bind(\n"
        "        'grid', runtime, transfer=method)\n"
    )
    assert lint_python_source(source) == []


def test_matching_transfer_and_registration_is_clean():
    source = (
        "def go(orb, proxy_cls, runtime, factory):\n"
        "    orb.serve('grid', factory, multiport=True)\n"
        "    return proxy_cls._spmd_bind(\n"
        "        'grid', runtime, transfer='multiport')\n"
    )
    assert lint_python_source(source) == []


def test_guarded_invocation_with_agreement_is_clean():
    source = (
        "from repro.ft.agreement import agree_failure\n"
        "def probe(proxy_cls, runtime, rank, rts):\n"
        "    solver = proxy_cls._spmd_bind('solver', runtime)\n"
        "    failure = None\n"
        "    if rank == 0:\n"
        "        try:\n"
        "            solver.status()\n"
        "        except Exception:\n"
        "            failure = 'down'\n"
        "    return agree_failure(rts, failure)\n"
    )
    assert [
        d
        for d in lint_python_source(source)
        if d.rule == "PD208"
    ] == []


def test_unguarded_proxy_invocation_is_clean():
    source = (
        "def run(proxy_cls, runtime, rank):\n"
        "    solver = proxy_cls._spmd_bind('solver', runtime)\n"
        "    return solver.step(rank)\n"
    )
    assert lint_python_source(source) == []


def test_guarded_call_on_untracked_object_is_clean():
    source = (
        "def run(log, rank):\n"
        "    if rank == 0:\n"
        "        log.write('hello')\n"
    )
    assert lint_python_source(source) == []


class TestGroupBindPolicy:
    """PD213: group bindings whose failover provably never engages."""

    def test_all_three_fail_fast_shapes_are_reported(self):
        diagnostics = lint_file(str(FIXTURES / "bad_group_bind.py"))
        lines = [d.line for d in diagnostics if d.rule == "PD213"]
        assert lines == [9, 10, 13]

    def test_retrying_policy_is_clean(self):
        source = (
            "from repro.ft.policy import FtPolicy\n"
            "RETRY = FtPolicy(max_retries=2)\n"
            "def run(proxy_cls, runtime):\n"
            "    inline = proxy_cls._group_bind(\n"
            "        'workers', runtime,\n"
            "        ft_policy=FtPolicy(max_retries=1))\n"
            "    named = proxy_cls._group_bind(\n"
            "        'workers', runtime, ft_policy=RETRY)\n"
            "    return inline, named\n"
        )
        assert lint_python_source(source) == []

    def test_unknown_policy_provenance_is_assumed_intentional(self):
        source = (
            "def run(proxy_cls, runtime, policy):\n"
            "    return proxy_cls._group_bind(\n"
            "        'workers', runtime, ft_policy=policy)\n"
        )
        assert lint_python_source(source) == []

    def test_singleton_binds_are_not_flagged(self):
        source = (
            "def run(proxy_cls, runtime):\n"
            "    return proxy_cls._bind('solo', runtime)\n"
        )
        assert [
            d
            for d in lint_python_source(source)
            if d.rule == "PD213"
        ] == []
