"""The repository lints itself clean — tier-1 guard.

Every PD rule runs over ``src/`` and ``examples/``; a regression
that introduces a violation (or a rule that false-positives on the
existing code) fails here.
"""

import pathlib

from repro.lint import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_src_and_examples_lint_clean():
    diagnostics = lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "examples")]
    )
    assert diagnostics == [], "\n".join(
        d.render() for d in diagnostics
    )
