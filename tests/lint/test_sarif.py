"""SARIF output: structure, rule metadata, and CLI integration."""

import json
import pathlib

from repro.lint import lint_file, render_sarif
from repro.lint.cli import main
from repro.lint.sarif import SARIF_VERSION

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


def _log_for(fixture):
    return json.loads(
        render_sarif(lint_file(str(FIXTURES / fixture)))
    )


def test_sarif_log_shape():
    log = _log_for("bad_rank_guard.py")
    assert log["version"] == SARIF_VERSION
    [run] = log["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    [result] = run["results"]
    assert result["ruleId"] == "PD201"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith(
        "bad_rank_guard.py"
    )
    assert location["region"]["startLine"] == 6


def test_sarif_embeds_rule_metadata():
    log = _log_for("bad_divergent_helper.py")
    [run] = log["runs"]
    [rule] = run["tool"]["driver"]["rules"]
    assert rule["id"] == "PD210"
    assert rule["defaultConfiguration"]["level"] == "error"
    assert rule["fullDescription"]["text"]  # paper rationale present
    # ruleIndex points back into the embedded rules array.
    [result] = run["results"]
    assert result["ruleIndex"] == 0


def test_sarif_result_message_includes_hint():
    log = _log_for("bad_retries_no_cache.py")
    [result] = log["runs"][0]["results"]
    assert result["level"] == "warning"
    assert "Hint:" in result["message"]["text"]


def test_empty_run_is_valid_sarif():
    log = json.loads(render_sarif([]))
    [run] = log["runs"]
    assert run["results"] == []
    assert run["tool"]["driver"]["rules"] == []


def test_cli_format_sarif(capsys):
    exit_code = main(
        ["--format", "sarif", str(FIXTURES / "bad_rank_guard.py")]
    )
    assert exit_code == 1
    log = json.loads(capsys.readouterr().out)
    assert log["runs"][0]["results"]


def test_cli_format_sarif_clean(capsys):
    exit_code = main(
        ["--format", "sarif", str(FIXTURES / "good_spmd.py")]
    )
    assert exit_code == 0
    log = json.loads(capsys.readouterr().out)
    assert log["runs"][0]["results"] == []
