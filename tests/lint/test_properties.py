"""Property tests: the linter never crashes, whatever it is fed.

Reuses the IDL fuzz strategies from ``tests.idl.test_fuzz`` so
every specification the compiler fuzzer can produce is also a valid
linter input.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import lint_idl_source, lint_python_source
from repro.lint.diagnostics import Diagnostic
from tests.idl.test_fuzz import specifications


@given(specifications())
@settings(max_examples=60, deadline=None)
def test_lint_never_crashes_on_parseable_idl(source):
    for diag in lint_idl_source(source):
        assert isinstance(diag, Diagnostic)
        assert diag.rule.startswith("PD1")
        assert diag.line >= 1


@given(st.text(max_size=200))
@settings(max_examples=120, deadline=None)
def test_lint_never_crashes_on_arbitrary_idl_text(source):
    for diag in lint_idl_source(source):
        assert diag.severity in ("error", "warning")


@given(st.text(max_size=200))
@settings(max_examples=120, deadline=None)
def test_lint_never_crashes_on_arbitrary_python_text(source):
    for diag in lint_python_source(source):
        assert diag.severity in ("error", "warning")


@given(specifications())
@settings(max_examples=30, deadline=None)
def test_diagnostics_render_in_both_formats(source):
    for diag in lint_idl_source(source):
        assert diag.rule in diag.render()
        assert diag.to_dict()["rule"] == diag.rule
