"""Family-A rules: each fixture violation is caught with the right
rule id, line number, and fix-hint."""

import pathlib

import pytest

from repro.lint import lint_file, lint_idl_source

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"

# (fixture, rule id, line, fragment expected in the hint)
IDL_CASES = [
    ("bad_syntax.idl", "PD100", 1, "fix the syntax"),
    ("bad_unbounded.idl", "PD101", 4, "declare a bound"),
    ("bad_element.idl", "PD102", 2, "fixed-width"),
    ("bad_mixed_out.idl", "PD103", 4, "split the operation"),
    ("bad_collision.idl", "PD104", 9, "rename one"),
    ("bad_dead_typedef.idl", "PD105", 1, "delete the typedef"),
    ("bad_raises.idl", "PD106", 2, "raises clause"),
    ("bad_oneway.idl", "PD107", 2, "oneway requests carry no reply"),
]


@pytest.mark.parametrize("fixture,rule,line,hint", IDL_CASES)
def test_fixture_violation_is_reported(fixture, rule, line, hint):
    path = str(FIXTURES / fixture)
    diagnostics = lint_file(path)
    matching = [d for d in diagnostics if d.rule == rule]
    assert matching, (
        f"{fixture}: expected {rule}, got "
        f"{[(d.rule, d.line) for d in diagnostics]}"
    )
    diag = matching[0]
    assert diag.line == line
    assert diag.file == path
    assert hint in diag.hint
    assert diag.severity in ("error", "warning")


def test_good_idl_lints_clean():
    assert lint_file(str(FIXTURES / "good.idl")) == []


def test_collision_names_both_declaring_interfaces():
    diagnostics = lint_file(str(FIXTURES / "bad_collision.idl"))
    [diag] = [d for d in diagnostics if d.rule == "PD104"]
    assert "alpha" in diag.message and "beta" in diag.message


def test_diamond_inheritance_is_not_a_collision():
    source = (
        "interface base { void run(); };\n"
        "interface left : base {};\n"
        "interface right : base {};\n"
        "interface bottom : left, right {};\n"
    )
    diagnostics = lint_idl_source(source)
    assert [d for d in diagnostics if d.rule == "PD104"] == []


def test_bounded_dsequence_through_typedef_is_clean():
    source = (
        "typedef dsequence<double, 64> arr;\n"
        "interface ok { void f(in arr a); };\n"
    )
    assert lint_idl_source(source) == []


def test_dsequence_element_via_typedef_chain_is_checked():
    source = (
        "typedef string name;\n"
        "typedef name alias;\n"
        "interface bad { void f(in dsequence<alias, 8> xs); };\n"
    )
    diagnostics = lint_idl_source(source)
    assert any(d.rule == "PD102" for d in diagnostics)


def test_dead_typedef_skipped_when_used_from_context():
    source = "typedef dsequence<double, 32> host_used;\n"
    assert any(
        d.rule == "PD105" for d in lint_idl_source(source)
    )
    assert (
        lint_idl_source(
            source, context_text="idl.host_used.from_global(...)"
        )
        == []
    )


def test_semantic_error_surfaces_as_pd100():
    diagnostics = lint_idl_source("interface ghost;\n")
    [diag] = diagnostics
    assert diag.rule == "PD100"
    assert "never defined" in diag.message


def test_line_offset_shifts_every_diagnostic():
    source = "typedef dsequence<double> d;\n"
    plain = lint_idl_source(source)
    shifted = lint_idl_source(source, line_offset=10)
    assert [d.line + 10 for d in plain] == [
        d.line for d in shifted
    ]
