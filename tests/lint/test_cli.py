"""The lint CLI: formats, filters, exit codes, and the compiler's
``--lint`` flag."""

import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


def run_lint(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
        cwd=str(REPO_ROOT),
    )


def test_clean_input_exits_zero():
    result = run_lint(str(FIXTURES / "good.idl"))
    assert result.returncode == 0
    assert "clean" in result.stdout


def test_findings_exit_one_with_location_in_text_output():
    result = run_lint(str(FIXTURES / "bad_unbounded.idl"))
    assert result.returncode == 1
    assert "bad_unbounded.idl:4: PD101" in result.stdout
    assert "hint:" in result.stdout


def test_json_output_carries_the_same_fields():
    result = run_lint(
        str(FIXTURES / "bad_oneway.idl"), "--format", "json"
    )
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    [diag] = payload
    assert diag["rule"] == "PD107"
    assert diag["line"] == 2
    assert diag["severity"] == "error"
    assert diag["file"].endswith("bad_oneway.idl")
    assert diag["hint"]


def test_directory_walk_finds_both_families():
    result = run_lint(str(FIXTURES), "--format", "json")
    assert result.returncode == 1
    rules = {d["rule"] for d in json.loads(result.stdout)}
    assert {"PD101", "PD201"} <= rules


def test_select_restricts_to_named_rules():
    result = run_lint(
        str(FIXTURES), "--select", "PD204", "--format", "json"
    )
    payload = json.loads(result.stdout)
    assert payload and all(
        d["rule"] == "PD204" for d in payload
    )


def test_ignore_drops_named_rules():
    result = run_lint(
        str(FIXTURES / "bad_unbounded.idl"),
        "--ignore",
        "unbounded-dsequence",
    )
    assert result.returncode == 0


def test_unknown_rule_is_a_usage_error():
    result = run_lint(
        str(FIXTURES / "good.idl"), "--select", "PD999"
    )
    assert result.returncode == 2


def test_missing_path_is_a_usage_error():
    result = run_lint(str(FIXTURES / "does_not_exist.idl"))
    assert result.returncode == 2


def test_list_rules_covers_both_families():
    result = run_lint("--list-rules")
    assert result.returncode == 0
    for rule_id in ("PD101", "PD107", "PD201", "PD205"):
        assert rule_id in result.stdout


def test_idl_compiler_lint_flag_blocks_bad_idl(tmp_path):
    bad = tmp_path / "bad.idl"
    bad.write_text(
        "typedef dsequence<double> d;\n"
        "interface i { void f(in d x); };\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.idl",
            str(bad),
            "--lint",
        ],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert result.returncode == 1
    assert "PD101" in result.stderr
    assert "no code generated" in result.stderr
    # Without --lint the same file still compiles.
    result = subprocess.run(
        [sys.executable, "-m", "repro.idl", str(bad)],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert result.returncode == 0
