"""Tests for the RTS interface gather/scatter used by the ORB."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import BlockTemplate, Layout, Proportions, transfer_schedule
from repro.rts import MessagePassingRTS, spmd_run


def gather_all(nranks, layout, data):
    """Run gather_chunks over an SPMD group; return root's assembly."""
    steps = transfer_schedule(layout, Layout(((0, layout.length),)))

    def body(ctx):
        rts = MessagePassingRTS(ctx.comm)
        lo, hi = layout.local_range(ctx.rank)
        local = data[lo:hi].copy()
        return rts.gather_chunks(local, steps, root=0, out=None)

    return spmd_run(nranks, body)


def scatter_all(nranks, layout, data):
    """Run scatter_chunks; return the per-rank blocks."""
    steps = transfer_schedule(Layout(((0, layout.length),)), layout)

    def body(ctx):
        rts = MessagePassingRTS(ctx.comm)
        out = np.zeros(layout.local_length(ctx.rank), dtype=data.dtype)
        full = data.copy() if ctx.rank == 0 else None
        rts.scatter_chunks(full, steps, root=0, out=out)
        return out

    return spmd_run(nranks, body)


class TestGatherScatter:
    def test_gather_assembles_on_root_only(self):
        layout = BlockTemplate(4).layout(10)
        data = np.arange(10, dtype=np.float64)
        results = gather_all(4, layout, data)
        np.testing.assert_array_equal(results[0], data)
        assert results[1] is None and results[2] is None

    def test_gather_into_preallocated_buffer(self):
        layout = BlockTemplate(2).layout(6)
        data = np.arange(6, dtype=np.float64)
        steps = transfer_schedule(layout, Layout(((0, 6),)))

        def body(ctx):
            rts = MessagePassingRTS(ctx.comm)
            lo, hi = layout.local_range(ctx.rank)
            out = np.zeros(6) if ctx.rank == 0 else None
            result = rts.gather_chunks(data[lo:hi].copy(), steps, 0, out)
            return result is out if ctx.rank == 0 else True

        assert all(spmd_run(2, body))

    def test_scatter_distributes_blocks(self):
        layout = Proportions(1, 3, 2).layout(12)
        data = np.arange(12, dtype=np.float64)
        blocks = scatter_all(3, layout, data)
        cursor = 0
        for r, block in enumerate(blocks):
            n = layout.local_length(r)
            np.testing.assert_array_equal(block, data[cursor : cursor + n])
            cursor += n

    def test_broadcast_and_synchronize(self):
        def body(ctx):
            rts = MessagePassingRTS(ctx.comm)
            rts.synchronize()
            return rts.broadcast("header" if ctx.rank == 1 else None, root=1)

        assert spmd_run(3, body) == ["header"] * 3

    def test_rank_size_passthrough(self):
        def body(ctx):
            rts = MessagePassingRTS(ctx.comm)
            return (rts.rank, rts.size)

        assert spmd_run(2, body) == [(0, 2), (1, 2)]

    @given(
        nranks=st.integers(1, 5),
        weights=st.lists(st.integers(0, 7), min_size=1, max_size=5).filter(
            lambda w: any(w)
        ),
        length=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_gather_scatter_roundtrip(self, nranks, weights, length):
        weights = (weights * nranks)[:nranks]
        if not any(weights):
            weights[0] = 1
        layout = Proportions(*weights).layout(length)
        data = np.arange(length, dtype=np.float64) * 3
        gathered = gather_all(nranks, layout, data)[0]
        if length:
            np.testing.assert_array_equal(gathered, data)
        blocks = scatter_all(nranks, layout, data)
        reassembled = (
            np.concatenate(blocks) if blocks else np.zeros(0)
        )
        np.testing.assert_array_equal(reassembled, data)
