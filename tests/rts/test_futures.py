"""Tests for ABC++-style futures."""

import threading

import pytest

from repro.rts import Future, FutureError


class TestFuture:
    def test_set_then_get(self):
        f = Future("x")
        f.set_result(42)
        assert f.ready()
        assert f.value() == 42
        assert f.touch() == 42
        assert f.result() == 42

    def test_blocks_until_set(self):
        f = Future()

        def producer():
            f.set_result("late value")

        t = threading.Timer(0.02, producer)
        t.start()
        assert f.value(timeout=5) == "late value"

    def test_timeout(self):
        f = Future("slow")
        with pytest.raises(FutureError):
            f.value(timeout=0.01)

    def test_exception_propagates(self):
        f = Future()
        f.set_exception(ValueError("remote failure"))
        assert f.ready()
        with pytest.raises(ValueError, match="remote failure"):
            f.value()

    def test_double_resolve_rejected(self):
        f = Future()
        f.set_result(1)
        with pytest.raises(FutureError):
            f.set_result(2)
        with pytest.raises(FutureError):
            f.set_exception(RuntimeError())

    def test_done_callback_after_resolve(self):
        f = Future()
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.value()))
        f.set_result(7)
        assert seen == [7]

    def test_done_callback_if_already_resolved(self):
        f = Future()
        f.set_result(9)
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.value()))
        assert seen == [9]

    def test_then_chains_value(self):
        f = Future()
        g = f.then(lambda v: v * 2)
        f.set_result(21)
        assert g.value(timeout=1) == 42

    def test_then_propagates_exception(self):
        f = Future()
        g = f.then(lambda v: v * 2)
        f.set_exception(KeyError("nope"))
        with pytest.raises(KeyError):
            g.value(timeout=1)

    def test_repr_shows_state(self):
        f = Future("named")
        assert "pending" in repr(f)
        f.set_result(None)
        assert "ready" in repr(f)


class TestDemandHook:
    """The `_pre_wait` hook lets a lazy producer (the pipelined
    invocation worker) learn that a reader is about to block."""

    def test_wait_announces_demand(self):
        future = Future(label="lazy")
        calls = []
        future._pre_wait = lambda f: (calls.append(f), future.set_result(1))
        assert future.value(timeout=1) == 1
        assert calls == [future]

    def test_ready_announces_demand(self):
        future = Future(label="lazy")
        calls = []
        future._pre_wait = calls.append
        assert not future.ready()
        assert calls == [future]

    def test_no_demand_once_resolved(self):
        future = Future(label="eager")
        calls = []
        future._pre_wait = calls.append
        future.set_result(42)
        assert future.value(timeout=1) == 42
        assert calls == []

    def test_then_propagates_demand_to_parent(self):
        parent = Future(label="parent")
        calls = []
        parent._pre_wait = lambda f: (
            calls.append(f),
            parent.set_result(10),
        )
        chained = parent.then(lambda v: v + 1)
        # Touching only the chained future must flush the parent's
        # producer, or the chain would deadlock under pipelining.
        assert chained.value(timeout=1) == 11
        assert calls == [parent]
