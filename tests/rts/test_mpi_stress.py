"""Randomized stress tests for the message-passing substrate.

Hypothesis generates traffic patterns (who sends what to whom with
which tag); the test executes them on a live thread group and checks
every message arrives exactly once, at the right rank, with the right
payload — under arbitrary interleavings of the sending threads.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rts import ANY_SOURCE, ANY_TAG, SUM, spmd_run


@st.composite
def traffic_patterns(draw):
    nranks = draw(st.integers(2, 5))
    nmessages = draw(st.integers(1, 25))
    messages = [
        (
            draw(st.integers(0, nranks - 1)),  # src
            draw(st.integers(0, nranks - 1)),  # dst
            draw(st.integers(0, 7)),  # tag
            draw(st.integers(-(10**6), 10**6)),  # payload
        )
        for _ in range(nmessages)
    ]
    return nranks, messages


class TestRandomTraffic:
    @given(traffic_patterns())
    @settings(max_examples=40, deadline=None)
    def test_every_message_arrives_exactly_once(self, pattern):
        nranks, messages = pattern

        def body(ctx):
            for src, dst, tag, payload in messages:
                if src == ctx.rank:
                    ctx.comm.send((src, tag, payload), dest=dst, tag=tag)
            received = []
            expected = sum(1 for _s, d, _t, _p in messages if d == ctx.rank)
            for _ in range(expected):
                received.append(ctx.comm.recv(ANY_SOURCE, ANY_TAG))
            return sorted(received)

        results = spmd_run(nranks, body)
        for rank, received in enumerate(results):
            expected = sorted(
                (src, tag, payload)
                for src, dst, tag, payload in messages
                if dst == rank
            )
            assert received == expected

    @given(traffic_patterns())
    @settings(max_examples=25, deadline=None)
    def test_tagged_receives_match_only_their_tag(self, pattern):
        nranks, messages = pattern

        def body(ctx):
            for src, dst, tag, payload in messages:
                if src == ctx.rank:
                    ctx.comm.send(payload, dest=dst, tag=tag)
            out = {}
            for tag in range(8):
                count = sum(
                    1
                    for _s, dst, t, _p in messages
                    if dst == ctx.rank and t == tag
                )
                got = sorted(
                    ctx.comm.recv(tag=tag) for _ in range(count)
                )
                if got:
                    out[tag] = got
            return out

        results = spmd_run(nranks, body)
        for rank, by_tag in enumerate(results):
            for tag, got in by_tag.items():
                expected = sorted(
                    payload
                    for _s, dst, t, payload in messages
                    if dst == rank and t == tag
                )
                assert got == expected

    @given(
        nranks=st.integers(2, 6),
        rounds=st.integers(1, 15),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_interleaved_collectives_and_p2p(self, nranks, rounds, seed):
        """Collectives and point-to-point traffic interleave freely
        without cross-matching."""
        rng = np.random.default_rng(seed)
        plan = [
            (int(rng.integers(0, 3)), int(rng.integers(0, nranks)))
            for _ in range(rounds)
        ]

        def body(ctx):
            totals = []
            for op, shift in plan:
                if op == 0:
                    totals.append(ctx.comm.allreduce(ctx.rank, op=SUM))
                elif op == 1:
                    # Ring exchange: rank r sends to r+shift (a
                    # bijection).  Receive by explicit source so
                    # rounds with different shifts cannot steal each
                    # other's messages.
                    dest = (ctx.rank + shift) % ctx.size
                    src = (ctx.rank - shift) % ctx.size
                    ctx.comm.send(ctx.rank * 100, dest=dest, tag=5)
                    totals.append(ctx.comm.recv(source=src, tag=5))
                else:
                    totals.append(
                        ctx.comm.bcast(
                            "x" * shift if ctx.rank == 0 else None, 0
                        )
                    )
            return totals

        results = spmd_run(nranks, body)
        ranksum = nranks * (nranks - 1) // 2
        for step, (op, shift) in enumerate(plan):
            if op == 0:
                assert all(r[step] == ranksum for r in results)
            elif op == 1:
                got = sorted(r[step] for r in results)
                assert got == [r * 100 for r in range(nranks)]
            else:
                assert all(r[step] == "x" * shift for r in results)
