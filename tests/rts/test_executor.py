"""Tests for the SPMD executor."""

import time

import pytest

from repro.rts import SpmdExecutor, spmd_run
from repro.rts.executor import SpmdError


class TestSpmdRun:
    def test_results_in_rank_order(self):
        assert spmd_run(4, lambda ctx: ctx.rank**2) == [0, 1, 4, 9]

    def test_context_fields(self):
        def body(ctx):
            assert ctx.comm.rank == ctx.rank
            assert ctx.comm.size == ctx.size
            return ctx.size

        assert spmd_run(3, body) == [3, 3, 3]

    def test_extra_args(self):
        def body(ctx, base, scale):
            return base + scale * ctx.rank

        assert spmd_run(3, body, 100, 10) == [100, 110, 120]

    def test_rank_args(self):
        exe = SpmdExecutor(3)
        results = exe.run(
            lambda ctx, letter: letter * (ctx.rank + 1),
            rank_args=[("a",), ("b",), ("c",)],
        )
        assert results == ["a", "bb", "ccc"]

    def test_rank_args_length_checked(self):
        with pytest.raises(ValueError):
            SpmdExecutor(3).run(lambda ctx, x: x, rank_args=[(1,)])

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            SpmdExecutor(0)

    def test_exception_propagates_with_rank(self):
        def body(ctx):
            if ctx.rank == 2:
                raise ValueError("bad rank")
            return ctx.rank

        with pytest.raises(SpmdError) as excinfo:
            spmd_run(4, body)
        assert "rank 2" in str(excinfo.value)
        assert isinstance(excinfo.value.failures[2], ValueError)

    def test_peer_abort_not_reported_as_primary(self):
        # Rank 0 raises; others die of GroupAbortedError while blocked.
        def body(ctx):
            if ctx.rank == 0:
                raise RuntimeError("primary")
            ctx.comm.barrier()

        with pytest.raises(SpmdError) as excinfo:
            spmd_run(3, body)
        assert set(excinfo.value.failures) == {0}


class TestSpawn:
    def test_detached_group_join(self):
        exe = SpmdExecutor(2, name="detached")
        handle = exe.spawn(lambda ctx: ctx.rank + 1)
        assert handle.join(5) == [1, 2]
        assert not handle.alive()

    def test_join_timeout(self):
        def body(ctx):
            if ctx.rank == 0:
                time.sleep(2.0)

        handle = SpmdExecutor(2).spawn(body)
        with pytest.raises(TimeoutError):
            handle.join(0.05)
        handle.join(10)

    def test_abort_releases_blocked_group(self):
        def body(ctx):
            ctx.comm.recv(source=ctx.rank, timeout=30)

        handle = SpmdExecutor(2).spawn(body)
        handle.abort("test shutdown")
        with pytest.raises(SpmdError):
            handle.join(5)
