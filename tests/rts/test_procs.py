"""Tests for the process RTS backend (ranks as processes, shm plane)."""

import os

import numpy as np
import pytest

from repro.dist import BlockTemplate, Layout, transfer_schedule
from repro.rts import (
    CollectiveMismatchError,
    DeadlockError,
    ProcessRTS,
    SpmdExecutor,
    process_backend_supported,
    rts_for,
    spawn_spmd,
    spmd_run,
)
from repro.rts.backends import ENV_VAR
from repro.rts.executor import SpmdError
from repro.rts.mpi import MAX
from repro.rts.procs import RankDiedError
from repro.rts.shm import SHM_THRESHOLD, ShmArray

pytestmark = pytest.mark.skipif(
    not process_backend_supported(),
    reason="process RTS backend needs the fork start method",
)


def prun(nranks, fn, *args, **kw):
    kw.setdefault("backend", "process")
    return spmd_run(nranks, fn, *args, **kw)


class TestLauncher:
    def test_ranks_are_distinct_processes(self):
        pids = prun(3, lambda ctx: os.getpid())
        assert len(set(pids)) == 3
        assert os.getpid() not in pids

    def test_results_in_rank_order_with_closures(self):
        base = 7  # closures work because ranks are forked, not spawned

        def body(ctx):
            return base + ctx.rank

        assert prun(4, body) == [7, 8, 9, 10]

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "process")
        pids = spmd_run(2, lambda ctx: os.getpid())
        assert os.getpid() not in pids

    def test_spawn_spmd_handle(self):
        handle = spawn_spmd(lambda ctx: ctx.rank * 2, 3, backend="process")
        assert handle.join(30) == [0, 2, 4]
        assert not handle.alive()
        assert len(set(handle.pids)) == 3

    def test_rank_args(self):
        exe = SpmdExecutor(2, backend="process")
        assert exe.run(
            lambda ctx, s: s * (ctx.rank + 1), rank_args=[("x",), ("y",)]
        ) == ["x", "yy"]

    def test_exception_carries_rank_and_type(self):
        def body(ctx):
            if ctx.rank == 1:
                raise ValueError("broken rank")
            ctx.comm.barrier()

        with pytest.raises(SpmdError) as excinfo:
            prun(3, body)
        assert set(excinfo.value.failures) == {1}
        assert isinstance(excinfo.value.failures[1], ValueError)

    def test_unpicklable_result_reports_cleanly(self):
        def body(ctx):
            return lambda: None  # lambdas cannot cross the uplink

        with pytest.raises(SpmdError) as excinfo:
            prun(2, body)
        assert "pickled" in str(excinfo.value)

    def test_abort_releases_blocked_ranks(self):
        handle = spawn_spmd(
            lambda ctx: ctx.comm.recv(source=ctx.rank, timeout=30),
            2,
            backend="process",
        )
        handle.abort("test shutdown")
        with pytest.raises(SpmdError):
            handle.join(15)

    def test_rank_death_detected_not_hung(self):
        def body(ctx):
            if ctx.rank == 1:
                os._exit(13)
            ctx.comm.barrier()

        with pytest.raises(SpmdError) as excinfo:
            prun(2, body)
        assert isinstance(excinfo.value.failures[1], RankDiedError)
        assert "13" in str(excinfo.value.failures[1])


class TestProcComm:
    def test_tagged_p2p_with_wildcards(self):
        def body(ctx):
            if ctx.rank == 0:
                ctx.comm.send("a", dest=1, tag=5)
                ctx.comm.send("b", dest=1, tag=9)
                return None
            status = {}
            first = ctx.comm.recv(source=0, tag=9, status=status)
            second = ctx.comm.recv()
            return (first, status["tag"], second)

        assert prun(2, body)[1] == ("b", 9, "a")

    def test_large_payload_ships_via_shm(self):
        n = (SHM_THRESHOLD // 8) * 4

        def body(ctx):
            if ctx.rank == 0:
                ctx.comm.send(np.arange(n, dtype=np.float64), dest=1)
                return True
            got = ctx.comm.recv(source=0)
            return bool((got == np.arange(n, dtype=np.float64)).all())

        assert prun(2, body) == [True, True]

    def test_send_isolation(self):
        def body(ctx):
            arr = np.zeros(4)
            if ctx.rank == 0:
                ctx.comm.send(arr, dest=1)
                arr[:] = 99.0  # must not reach the receiver
                ctx.comm.barrier()
                return True
            got = ctx.comm.recv(source=0)
            ctx.comm.barrier()
            return float(got.sum()) == 0.0

        assert all(prun(2, body))

    def test_irecv_and_probe(self):
        def body(ctx):
            if ctx.rank == 0:
                req = ctx.comm.irecv(source=1, tag=3)
                done, _ = req.test()
                ctx.comm.barrier()
                value = req.wait(timeout=10)
                return value
            ctx.comm.send(41, dest=0, tag=3)
            ctx.comm.barrier()
            return None

        assert prun(2, body)[0] == 41

    def test_buffer_send_recv(self):
        def body(ctx):
            if ctx.rank == 0:
                ctx.comm.Send(np.arange(8, dtype=np.int64), dest=1)
                return None
            buf = np.zeros(8, dtype=np.int64)
            ctx.comm.Recv(buf, source=0)
            return int(buf.sum())

        assert prun(2, body)[1] == 28

    def test_collectives(self):
        def body(ctx):
            r = ctx.rank
            out = {}
            out["bcast"] = ctx.comm.bcast("hdr" if r == 1 else None, root=1)
            out["gather"] = ctx.comm.gather(r * r, root=0)
            out["allgather"] = ctx.comm.allgather(r)
            out["scatter"] = ctx.comm.scatter(
                [10, 20, 30] if r == 0 else None, root=0
            )
            out["alltoall"] = ctx.comm.alltoall([r * 10 + c for c in range(3)])
            out["reduce"] = ctx.comm.reduce(r + 1, root=2)
            out["allreduce"] = ctx.comm.allreduce(np.int64(r), op=MAX)
            return out

        results = prun(3, body)
        assert [r["bcast"] for r in results] == ["hdr"] * 3
        assert results[0]["gather"] == [0, 1, 4]
        assert results[1]["gather"] is None
        assert all(r["allgather"] == [0, 1, 2] for r in results)
        assert [r["scatter"] for r in results] == [10, 20, 30]
        assert results[1]["alltoall"] == [1, 11, 21]
        assert results[2]["reduce"] == 6
        assert results[0]["reduce"] is None
        assert all(r["allreduce"] == 2 for r in results)

    def test_collective_mismatch_detected(self):
        def body(ctx):
            if ctx.rank == 0:
                ctx.comm.bcast("x", root=0)
            else:
                ctx.comm.barrier()

        with pytest.raises(SpmdError) as excinfo:
            prun(2, body)
        assert any(
            isinstance(e, CollectiveMismatchError)
            for e in excinfo.value.failures.values()
        )

    def test_dup_separates_traffic(self):
        def body(ctx):
            other = ctx.comm.dup("aux")
            if ctx.rank == 0:
                ctx.comm.send("base", dest=1, tag=1)
                other.send("aux", dest=1, tag=1)
                return None
            # The dup'd comm must only see the dup'd send.
            aux = other.recv(source=0, tag=1, timeout=10)
            base = ctx.comm.recv(source=0, tag=1, timeout=10)
            return (base, aux)

        assert prun(2, body)[1] == ("base", "aux")

    def test_recv_timeout_is_deadlock_error(self):
        def body(ctx):
            with pytest.raises(DeadlockError):
                ctx.comm.recv(source=ctx.rank ^ 1, timeout=0.2)
            return True

        assert all(prun(2, body))


class TestProcessRTSDataPlane:
    def test_rts_for_selects_shm_plane(self):
        def body(ctx):
            return type(rts_for(ctx.comm)).__name__

        assert prun(2, body) == ["ProcessRTS", "ProcessRTS"]

    def test_gather_root_gets_zero_copy_view(self):
        layout = BlockTemplate(4).layout(1 << 16)
        steps = transfer_schedule(layout, Layout(((0, layout.length),)))

        def body(ctx):
            rts = rts_for(ctx.comm)
            lo, hi = layout.local_range(ctx.rank)
            local = np.arange(lo, hi, dtype=np.float64)
            full = rts.gather_chunks(local, steps, root=0, out=None)
            if ctx.rank != 0:
                return full is None
            # The root's result is a view into the pooled segment, not
            # a pickled copy: it arrives as the leased-array subclass.
            return (
                isinstance(full, ShmArray)
                and bool(
                    (np.asarray(full)
                     == np.arange(layout.length, dtype=np.float64)).all()
                )
            )

        assert all(prun(4, body))

    def test_gather_into_out_buffer(self):
        layout = BlockTemplate(2).layout(1 << 15)
        steps = transfer_schedule(layout, Layout(((0, layout.length),)))

        def body(ctx):
            rts = rts_for(ctx.comm)
            lo, hi = layout.local_range(ctx.rank)
            out = np.zeros(layout.length) if ctx.rank == 0 else None
            result = rts.gather_chunks(
                np.full(hi - lo, float(ctx.rank)), steps, 0, out
            )
            if ctx.rank != 0:
                return True
            return result is out and float(out.sum()) == float(
                layout.local_length(1)
            )

        assert all(prun(2, body))

    def test_scatter_chunks(self):
        layout = BlockTemplate(3).layout(1 << 15)
        steps = transfer_schedule(Layout(((0, layout.length),)), layout)
        data = np.arange(layout.length, dtype=np.float64)

        def body(ctx):
            rts = rts_for(ctx.comm)
            out = np.zeros(layout.local_length(ctx.rank))
            rts.scatter_chunks(
                data if ctx.rank == 0 else None, steps, 0, out
            )
            lo, hi = layout.local_range(ctx.rank)
            return bool((out == data[lo:hi]).all())

        assert all(prun(3, body))

    def test_broadcast_large_array_through_shm(self):
        payload = np.arange(1 << 16, dtype=np.float64)

        def body(ctx):
            rts = rts_for(ctx.comm)
            got = rts.broadcast(payload if ctx.rank == 2 else None, root=2)
            return bool((np.asarray(got) == payload).all())

        assert all(prun(3, body))

    def test_segments_are_pooled_and_reused(self):
        layout = BlockTemplate(2).layout(1 << 15)
        steps = transfer_schedule(layout, Layout(((0, layout.length),)))

        def body(ctx):
            rts = rts_for(ctx.comm)
            lo, hi = layout.local_range(ctx.rank)
            out = np.zeros(layout.length) if ctx.rank == 0 else None
            for _ in range(6):
                rts.gather_chunks(
                    np.ones(hi - lo), steps, 0, out
                )
            return None

        handle = spawn_spmd(body, 2, backend="process")
        handle.join(60)
        stats = handle.shm_stats()
        assert stats["reused"] >= 4
        assert stats["allocated"] >= 1


class TestBackendIdentity:
    def test_rank_context_inside_process_rank(self):
        from repro.rts import backends

        def body(ctx):
            info = backends.current_context()
            return (info["backend"], info["rank"], info["size"])

        assert prun(2, body) == [("process", 0, 2), ("process", 1, 2)]

    def test_orb_stats_rts_section(self):
        from repro.core import ORB

        with ORB("rts-stats") as orb:
            section = orb.stats()["rts"]
        assert section["backend"] in ("thread", "process")
        assert section["rank"] == 0
        assert {"allocated", "reused", "freed", "active"} <= set(
            section["shm"]
        )

    def test_spans_tagged_with_backend(self):
        from repro.trace import TraceRecorder

        def body(ctx):
            trace = TraceRecorder()
            with trace.begin("invoke", rank=ctx.rank):
                pass
            (span,) = trace.spans()
            return span.attrs.get("rts")

        assert prun(2, body) == ["process", "process"]
        assert spmd_run(2, body, backend="thread") == ["thread", "thread"]
