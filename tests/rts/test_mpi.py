"""Unit tests for the thread-based message-passing library."""

import threading

import numpy as np
import pytest

from repro.rts import (
    ANY_SOURCE,
    ANY_TAG,
    CollectiveMismatchError,
    DeadlockError,
    GroupAbortedError,
    MAX,
    MIN,
    PROD,
    SUM,
    create_group,
    spmd_run,
)


class TestPointToPoint:
    def test_send_recv_same_thread(self):
        a, b = create_group(2)
        a.send({"x": 1}, dest=1, tag=7)
        assert b.recv(source=0, tag=7) == {"x": 1}

    def test_payload_is_isolated(self):
        a, b = create_group(2)
        payload = [1, 2, 3]
        a.send(payload, dest=1)
        payload.append(4)
        assert b.recv() == [1, 2, 3]

    def test_numpy_payload_is_copied(self):
        a, b = create_group(2)
        arr = np.arange(4)
        a.send(arr, dest=1)
        arr[:] = 0
        np.testing.assert_array_equal(b.recv(), [0, 1, 2, 3])

    def test_tag_matching_out_of_order(self):
        a, b = create_group(2)
        a.send("first", dest=1, tag=1)
        a.send("second", dest=1, tag=2)
        assert b.recv(tag=2) == "second"
        assert b.recv(tag=1) == "first"

    def test_source_matching(self):
        comms = create_group(3)
        comms[0].send("from0", dest=2)
        comms[1].send("from1", dest=2)
        assert comms[2].recv(source=1) == "from1"
        assert comms[2].recv(source=0) == "from0"

    def test_wildcards_and_status(self):
        a, b = create_group(2)
        a.send("hello", dest=1, tag=42)
        status = {}
        assert b.recv(ANY_SOURCE, ANY_TAG, status=status) == "hello"
        assert status == {"source": 0, "tag": 42}

    def test_fifo_within_matching_messages(self):
        a, b = create_group(2)
        for i in range(5):
            a.send(i, dest=1, tag=3)
        assert [b.recv(tag=3) for _ in range(5)] == list(range(5))

    def test_recv_blocks_until_send(self):
        a, b = create_group(2)
        out = []

        def receiver():
            out.append(b.recv(source=0))

        t = threading.Thread(target=receiver)
        t.start()
        a.send("late", dest=0 + 1)
        t.join(5)
        assert out == ["late"]

    def test_recv_timeout_raises_deadlock(self):
        _, b = create_group(2)
        with pytest.raises(DeadlockError):
            b.recv(source=0, timeout=0.05)

    def test_send_validates_dest_and_tag(self):
        a, _ = create_group(2)
        with pytest.raises(ValueError):
            a.send(1, dest=5)
        with pytest.raises(ValueError):
            a.send(1, dest=1, tag=-3)

    def test_probe(self):
        a, b = create_group(2)
        assert not b.probe()
        a.send(1, dest=1, tag=9)
        assert b.probe(tag=9)
        assert not b.probe(tag=8)

    def test_isend_is_buffered(self):
        a, b = create_group(2)
        req = a.isend("x", dest=1)
        done, _ = req.test()
        assert done
        req.wait()
        assert b.recv() == "x"

    def test_irecv_wait(self):
        a, b = create_group(2)
        req = b.irecv(source=0)
        done, _ = req.test()
        assert not done
        a.send("y", dest=1)
        assert req.wait(timeout=5) == "y"

    def test_irecv_test_completes(self):
        a, b = create_group(2)
        a.send("z", dest=1)
        req = b.irecv()
        done, value = req.test()
        assert done and value == "z"
        # A completed request stays completed.
        assert req.test() == (True, "z")

    def test_sendrecv(self):
        a, b = create_group(2)
        b.send("pong", dest=0)
        assert a.sendrecv("ping", dest=1) == "pong"
        assert b.recv(source=0) == "ping"

    def test_unpicklable_payload_fails_loudly(self):
        a, _ = create_group(2)
        with pytest.raises(Exception):
            a.send(threading.Lock(), dest=1)


class TestBufferPath:
    def test_send_recv_buffer(self):
        a, b = create_group(2)
        a.Send(np.arange(8, dtype=np.float64), dest=1)
        buf = np.zeros(8)
        b.Recv(buf, source=0)
        np.testing.assert_array_equal(buf, np.arange(8))

    def test_recv_buffer_too_small(self):
        a, b = create_group(2)
        a.Send(np.arange(8), dest=1)
        with pytest.raises(ValueError):
            b.Recv(np.zeros(4), source=0)


def run(n, body, **kw):
    return spmd_run(n, body, **kw)


class TestCollectives:
    def test_barrier_all_arrive(self):
        counter = []

        def body(ctx):
            counter.append(ctx.rank)
            ctx.comm.barrier()
            return len(counter)

        results = run(4, body)
        # After the barrier every rank saw all arrivals.
        assert all(r == 4 for r in results)

    def test_bcast(self):
        def body(ctx):
            value = {"data": 99} if ctx.rank == 1 else None
            return ctx.comm.bcast(value, root=1)

        assert run(3, body) == [{"data": 99}] * 3

    def test_bcast_isolates_between_ranks(self):
        def body(ctx):
            value = ctx.comm.bcast([0], root=0)
            value.append(ctx.rank)
            return value

        results = run(3, body)
        assert sorted(results) == [[0, 0], [0, 1], [0, 2]]

    def test_scatter(self):
        def body(ctx):
            items = [i * i for i in range(ctx.size)] if ctx.rank == 0 else None
            return ctx.comm.scatter(items, root=0)

        assert run(4, body) == [0, 1, 4, 9]

    def test_scatter_wrong_count(self):
        def body(ctx):
            items = [1] if ctx.rank == 0 else None
            return ctx.comm.scatter(items, root=0)

        with pytest.raises(Exception):
            run(3, body)

    def test_gather(self):
        def body(ctx):
            return ctx.comm.gather(ctx.rank * 10, root=2)

        results = run(3, body)
        assert results[0] is None and results[1] is None
        assert results[2] == [0, 10, 20]

    def test_allgather(self):
        def body(ctx):
            return ctx.comm.allgather(chr(ord("a") + ctx.rank))

        assert run(3, body) == [["a", "b", "c"]] * 3

    def test_alltoall(self):
        def body(ctx):
            return ctx.comm.alltoall(
                [f"{ctx.rank}->{j}" for j in range(ctx.size)]
            )

        results = run(3, body)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_alltoall_wrong_count(self):
        def body(ctx):
            return ctx.comm.alltoall([0])

        with pytest.raises(Exception):
            run(2, body)

    def test_reduce_sum(self):
        def body(ctx):
            return ctx.comm.reduce(ctx.rank + 1, op=SUM, root=0)

        assert run(4, body)[0] == 10

    def test_allreduce_ops(self):
        def body(ctx):
            return (
                ctx.comm.allreduce(ctx.rank + 1, op=PROD),
                ctx.comm.allreduce(ctx.rank, op=MAX),
                ctx.comm.allreduce(ctx.rank, op=MIN),
            )

        assert run(3, body) == [(6, 2, 0)] * 3

    def test_allreduce_numpy(self):
        def body(ctx):
            return ctx.comm.allreduce(np.full(3, ctx.rank), op=SUM)

        for result in run(3, body):
            np.testing.assert_array_equal(result, [3, 3, 3])

    def test_root_validation(self):
        def body(ctx):
            ctx.comm.bcast(1, root=9)

        with pytest.raises(Exception):
            run(2, body)

    def test_back_to_back_collectives_do_not_interfere(self):
        def body(ctx):
            out = []
            for i in range(50):
                out.append(ctx.comm.allreduce(ctx.rank + i))
            return out

        results = run(4, body)
        expected = [6 + 4 * i for i in range(50)]
        assert all(r == expected for r in results)

    def test_single_rank_group(self):
        def body(ctx):
            ctx.comm.barrier()
            assert ctx.comm.bcast("v", root=0) == "v"
            assert ctx.comm.gather(5, root=0) == [5]
            assert ctx.comm.allreduce(3) == 3
            return "ok"

        assert run(1, body) == ["ok"]


class TestFailureModes:
    def test_collective_mismatch_detected(self):
        def body(ctx):
            if ctx.rank == 0:
                ctx.comm.bcast(1, root=0)
            else:
                ctx.comm.barrier()

        with pytest.raises(Exception) as excinfo:
            run(2, body)
        assert "CollectiveMismatch" in str(excinfo.value) or isinstance(
            excinfo.value, CollectiveMismatchError
        )

    def test_abort_wakes_blocked_receivers(self):
        def body(ctx):
            if ctx.rank == 0:
                ctx.comm.abort("injected failure")
                return "aborted"
            with pytest.raises(GroupAbortedError):
                ctx.comm.recv(source=0, timeout=10)
            return "released"

        assert run(2, body) == ["aborted", "released"]

    def test_peer_exception_unblocks_group(self):
        def body(ctx):
            if ctx.rank == 0:
                raise RuntimeError("rank zero exploded")
            ctx.comm.recv(source=0, timeout=30)

        with pytest.raises(Exception) as excinfo:
            run(2, body)
        assert "rank zero exploded" in str(excinfo.value)

    def test_send_after_abort_raises(self):
        a, b = create_group(2)
        a.abort("gone")
        with pytest.raises(GroupAbortedError):
            b.send(1, dest=0)
