"""Tests for the one-sided RTS interface (the paper's future-work
alternative to message passing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import (
    BlockTemplate,
    DistributedSequence,
    Layout,
    Proportions,
    transfer_schedule,
)
from repro.rts import OneSidedRTS, Window, WindowError, spmd_run
from repro.rts.onesided import remote_element


class TestWindow:
    def test_get_reads_remote_memory(self):
        def body(ctx):
            local = np.full(4, float(ctx.rank))
            window = Window.create(ctx.comm, local)
            window.fence()
            # Every rank reads rank 2's buffer without rank 2 acting.
            value = window.get(2, 0, 4)
            window.fence()
            return value.tolist()

        assert spmd_run(3, body) == [[2.0] * 4] * 3

    def test_put_writes_remote_memory(self):
        def body(ctx):
            local = np.zeros(3)
            window = Window.create(ctx.comm, local)
            window.fence()
            if ctx.rank == 0:
                for target in range(ctx.size):
                    window.put(target, 1, np.array([7.0]))
            window.fence()
            return local.tolist()

        assert spmd_run(3, body) == [[0.0, 7.0, 0.0]] * 3

    def test_accumulate_is_atomic_sum(self):
        def body(ctx):
            local = np.zeros(1)
            window = Window.create(ctx.comm, local)
            window.fence()
            # Everyone accumulates into rank 0 concurrently.
            window.accumulate(0, 0, np.array([1.0]))
            window.fence()
            return local[0]

        results = spmd_run(8, body)
        assert results[0] == 8.0

    def test_get_is_a_copy(self):
        def body(ctx):
            local = np.arange(2, dtype=np.float64)
            window = Window.create(ctx.comm, local)
            window.fence()
            snapshot = window.get(0, 0, 2)
            snapshot[:] = -1
            window.fence()
            return local.tolist()

        assert spmd_run(2, body)[0] == [0.0, 1.0]

    def test_range_checking(self):
        def body(ctx):
            window = Window.create(ctx.comm, np.zeros(4))
            window.fence()
            with pytest.raises(WindowError):
                window.get(0, 2, 5)
            with pytest.raises(WindowError):
                window.put(0, -1, np.zeros(1))
            with pytest.raises(WindowError):
                window.get(9, 0, 1)
            window.fence()
            return True

        assert all(spmd_run(2, body))

    def test_window_requires_1d(self):
        def body(ctx):
            with pytest.raises(WindowError):
                Window.create(ctx.comm, np.zeros((2, 2)))
            return True

        # Shape validation happens before any collective step, so all
        # ranks observe the error and the group survives.
        assert all(spmd_run(2, body))


class TestOneSidedRTS:
    def test_gather_matches_message_passing(self):
        layout = Proportions(1, 3, 2).layout(12)
        data = np.arange(12, dtype=np.float64)
        steps = transfer_schedule(layout, Layout(((0, 12),)))

        def body(ctx):
            rts = OneSidedRTS(ctx.comm)
            lo, hi = layout.local_range(ctx.rank)
            return rts.gather_chunks(data[lo:hi].copy(), steps, 0, None)

        results = spmd_run(3, body)
        np.testing.assert_array_equal(results[0], data)
        assert results[1] is None

    def test_scatter_matches_message_passing(self):
        layout = BlockTemplate(4).layout(10)
        data = np.arange(10, dtype=np.float64)
        steps = transfer_schedule(Layout(((0, 10),)), layout)

        def body(ctx):
            rts = OneSidedRTS(ctx.comm)
            out = np.zeros(layout.local_length(ctx.rank))
            rts.scatter_chunks(
                data if ctx.rank == 0 else None, steps, 0, out
            )
            return out

        blocks = spmd_run(4, body)
        np.testing.assert_array_equal(np.concatenate(blocks), data)

    def test_broadcast_and_sync(self):
        def body(ctx):
            rts = OneSidedRTS(ctx.comm)
            rts.synchronize()
            return rts.broadcast(ctx.rank if ctx.rank == 1 else None, 1)

        assert spmd_run(3, body) == [1, 1, 1]

    @given(
        nranks=st.integers(1, 5),
        weights=st.lists(st.integers(0, 7), min_size=1, max_size=5).filter(
            lambda w: any(w)
        ),
        length=st.integers(0, 80),
    )
    @settings(max_examples=20, deadline=None)
    def test_gather_scatter_roundtrip(self, nranks, weights, length):
        weights = (weights * nranks)[:nranks]
        if not any(weights):
            weights[0] = 1
        layout = Proportions(*weights).layout(length)
        data = np.arange(length, dtype=np.float64)
        gather_steps = transfer_schedule(layout, Layout(((0, length),)))
        scatter_steps = transfer_schedule(Layout(((0, length),)), layout)

        def body(ctx):
            rts = OneSidedRTS(ctx.comm)
            lo, hi = layout.local_range(ctx.rank)
            gathered = rts.gather_chunks(
                data[lo:hi].copy(), gather_steps, 0, None
            )
            out = np.zeros(layout.local_length(ctx.rank))
            rts.scatter_chunks(
                data if ctx.rank == 0 else None, scatter_steps, 0, out
            )
            np.testing.assert_array_equal(out, data[lo:hi])
            return gathered

        results = spmd_run(nranks, body)
        np.testing.assert_array_equal(
            results[0] if length else [], data
        )


class TestAsynchronousSequenceAccess:
    def test_remote_element_without_collective(self):
        """The capability the paper's message-passing mapping lacked:
        reading an arbitrary element without all threads calling."""

        def body(ctx):
            seq = DistributedSequence.from_global(
                np.arange(10, dtype=np.float64) * 10, comm=ctx.comm
            )
            window = Window.create(ctx.comm, seq.local_data())
            window.fence()
            # Each rank reads a *different* element — impossible with
            # the collective __getitem__.
            value = remote_element(seq, (ctx.rank * 3) % 10, window)
            window.fence()
            return value

        assert spmd_run(4, body) == [0.0, 30.0, 60.0, 90.0]
