"""Shared-memory hygiene: no segment outlives its SPMD group.

The acceptance bar from ISSUE 7: zero leaked ``/dev/shm`` entries
after any process-backend run — normal completion, application error,
abort, and a rank SIGKILLed mid-transfer (driven by the PR 4
fault-injection schedule, so the kill point is seeded and
reproducible).
"""

import os
import signal

import numpy as np
import pytest

from repro.dist import BlockTemplate, Layout, transfer_schedule
from repro.ft import FaultSchedule
from repro.rts import process_backend_supported, rts_for, spawn_spmd
from repro.rts.executor import SpmdError
from repro.rts.procs import RankDiedError
from repro.rts.shm import NAME_PREFIX, leaked_segments

pytestmark = pytest.mark.skipif(
    not process_backend_supported(),
    reason="process RTS backend needs the fork start method",
)


def _pardis_segments():
    return [
        n for n in leaked_segments() if n.startswith(NAME_PREFIX)
    ]


def _gather_body(ctx):
    layout = BlockTemplate(ctx.size).layout(1 << 16)
    steps = transfer_schedule(layout, Layout(((0, layout.length),)))
    rts = rts_for(ctx.comm)
    local = np.full(
        layout.local_length(ctx.rank), float(ctx.rank)
    )
    for _ in range(3):
        rts.gather_chunks(local, steps, root=0, out=None)
    rts.synchronize()
    return True


class TestHygiene:
    def test_clean_run_leaves_no_segments(self):
        handle = spawn_spmd(_gather_body, 3, backend="process")
        assert all(handle.join(60))
        assert _pardis_segments() == []

    def test_failed_run_leaves_no_segments(self):
        def body(ctx):
            _gather_body(ctx)
            if ctx.rank == 1:
                raise RuntimeError("late failure")
            ctx.comm.barrier()

        handle = spawn_spmd(body, 3, backend="process")
        with pytest.raises(SpmdError):
            handle.join(60)
        assert _pardis_segments() == []

    def test_killed_rank_swept_by_parent(self):
        # A seeded fault schedule decides which send gets the SIGKILL,
        # so the kill lands mid-gather at a reproducible point while
        # pooled segments are checked out and registered.
        def body(ctx):
            faults = FaultSchedule(
                seed=1234, drop=0.4, kinds=("request",), start_after=2
            )
            layout = BlockTemplate(ctx.size).layout(1 << 16)
            steps = transfer_schedule(
                layout, Layout(((0, layout.length),))
            )
            rts = rts_for(ctx.comm)
            local = np.zeros(layout.local_length(ctx.rank))
            for _ in range(16):
                if ctx.rank == 1 and "drop" in faults.decide("request"):
                    # Die without any cleanup, segments still live.
                    os.kill(os.getpid(), signal.SIGKILL)
                rts.gather_chunks(local, steps, root=0, out=None)
            return True

        handle = spawn_spmd(body, 3, backend="process")
        with pytest.raises(SpmdError) as excinfo:
            handle.join(90)
        assert isinstance(excinfo.value.failures[1], RankDiedError)
        assert _pardis_segments() == []

    def test_abort_mid_transfer_leaves_no_segments(self):
        def body(ctx):
            while True:
                _gather_body(ctx)

        handle = spawn_spmd(body, 2, backend="process")
        handle.abort("hygiene test")
        with pytest.raises(SpmdError):
            handle.join(60)
        assert _pardis_segments() == []
