"""Backend parametrization for the RTS contract suites.

The SPMD-contract modules listed in ``PROCESS_MODULES`` run twice:
once per RTS backend, selected through the ``PARDIS_RTS`` environment
variable so the tests themselves stay backend-oblivious (ISSUE 7's
"existing suites pass unmodified").  Modules that exercise
thread-backend internals directly (``create_group``, one-sided
windows, futures plumbing) keep their single run.
"""

import os

import pytest

from repro.rts import process_backend_supported
from repro.rts.backends import ENV_VAR

#: Modules whose tests go through launcher-selected backends.
PROCESS_MODULES = {"test_executor", "test_interface"}


def pytest_generate_tests(metafunc):
    if "rts_backend" not in metafunc.fixturenames:
        return
    module = metafunc.module.__name__.rpartition(".")[2]
    if module in PROCESS_MODULES:
        metafunc.parametrize(
            "rts_backend",
            ["thread", "process"],
            indirect=True,
            scope="module",
        )


@pytest.fixture(scope="module")
def rts_backend(request):
    backend = getattr(request, "param", None)
    if backend is None:
        yield os.environ.get(ENV_VAR) or "thread"
        return
    if backend == "process" and not process_backend_supported():
        pytest.skip("process RTS backend needs the fork start method")
    old = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = backend
    try:
        yield backend
    finally:
        if old is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = old


@pytest.fixture(autouse=True)
def _rts_backend_env(rts_backend):
    yield
