"""Span lifecycle, the null-span disabled path, and the recorder."""

import pytest

from repro.trace import NULL_SPAN, TraceRecorder, span_or_null
from repro.trace.span import SpanHandle


class TestSpanHandle:
    def test_end_records_one_immutable_span(self):
        trace = TraceRecorder()
        handle = trace.begin(
            "encode", trace_id=7, side="client", rank=2, op="ping"
        )
        span = handle.note(nbytes=128).end()
        assert span is not None
        assert span.name == "encode"
        assert span.trace_id == 7
        assert span.side == "client"
        assert span.rank == 2
        assert span.attrs == {"op": "ping", "nbytes": 128}
        assert span.dur_us >= 0.0
        assert span.end_us == pytest.approx(
            span.start_us + span.dur_us
        )
        assert trace.spans() == [span]

    def test_double_end_records_once(self):
        trace = TraceRecorder()
        handle = trace.begin("transfer")
        assert handle.end() is not None
        assert handle.end() is None
        assert len(trace) == 1

    def test_context_manager_records_and_tags_errors(self):
        trace = TraceRecorder()
        with trace.begin("dispatch", trace_id=1):
            pass
        with pytest.raises(ValueError):
            with trace.begin("dispatch", trace_id=2):
                raise ValueError("boom")
        ok, failed = trace.spans(name="dispatch")
        assert "error" not in ok.attrs
        assert failed.attrs["error"] == "ValueError('boom')"

    def test_timestamps_share_one_epoch(self):
        # Spans from two recorders must land on one timeline — the
        # Chrome trace of a client recorder and a server recorder
        # renders coherently only with a shared epoch.
        a, b = TraceRecorder(), TraceRecorder()
        first = a.begin("x").end()
        second = b.begin("x").end()
        assert second.start_us >= first.start_us


class TestNullSpan:
    def test_span_or_null_disabled_path(self):
        span = span_or_null(None, "encode", trace_id=3)
        assert span is NULL_SPAN
        assert not span
        assert span.note(nbytes=1) is span
        assert span.end() is None
        with span as inner:
            assert inner is span

    def test_span_or_null_enabled_path(self):
        trace = TraceRecorder()
        span = span_or_null(trace, "encode", trace_id=3)
        assert isinstance(span, SpanHandle)
        assert span
        span.end()
        assert trace.spans()[0].trace_id == 3


class TestTraceRecorder:
    def test_filters(self):
        trace = TraceRecorder()
        trace.begin("encode", trace_id=1, side="client", rank=0).end()
        trace.begin("dispatch", trace_id=1, side="server", rank=1).end()
        trace.begin("encode", trace_id=2, side="client", rank=1).end()
        assert len(trace.spans(trace_id=1)) == 2
        assert len(trace.spans(name="encode")) == 2
        assert len(trace.spans(side="server")) == 1
        assert len(trace.spans(rank=1)) == 2
        assert len(trace.spans(trace_id=1, side="client")) == 1
        assert trace.trace_ids() == [1, 2]

    def test_capacity_evicts_oldest_and_counts_drops(self):
        trace = TraceRecorder(capacity=3)
        for i in range(5):
            trace.begin("s", trace_id=i).end()
        assert len(trace) == 3
        assert trace.dropped == 2
        assert [s.trace_id for s in trace.spans()] == [2, 3, 4]
        assert trace.stats() == {
            "spans": 3,
            "capacity": 3,
            "dropped": 2,
        }
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_spans_feed_duration_histograms(self):
        trace = TraceRecorder()
        trace.begin("reply", side="server").end()
        trace.begin("reply", side="server").end()
        snap = trace.metrics.snapshot()
        assert snap["histograms"]["span.server.reply_us"]["count"] == 2

    def test_ft_observer_mirrors_counters(self):
        trace = TraceRecorder()
        observe = trace.ft_observer()
        observe("retries", 1)
        observe("retries", 2)
        observe("degraded", 1)
        counters = trace.metrics.snapshot()["counters"]
        assert counters["ft.retries"] == 3
        assert counters["ft.degraded"] == 1

    def test_fabric_meter_tallies_frames_and_bytes(self):
        trace = TraceRecorder()
        meter = trace.fabric_meter()
        meter(1, 2, "request", 100)
        meter(1, 2, "request", 50)
        meter(2, 1, "reply", 30)
        counters = trace.metrics.snapshot()["counters"]
        assert counters["fabric.frames.request"] == 2
        assert counters["fabric.bytes.request"] == 150
        assert counters["fabric.frames.reply"] == 1
        assert counters["fabric.bytes.reply"] == 30
