"""Chrome-trace exporter round-trips and the text timeline views."""

import json

from repro.trace import (
    Span,
    TraceRecorder,
    chrome_trace_events,
    format_timeline,
    read_chrome_trace,
    spans_from_chrome_trace,
    summarize,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.trace.view import format_summary


def _sample_spans():
    return [
        Span("invoke", 0xABC, "client", 0, 10.0, 500.0, {"op": "ping"}),
        Span("transfer", 0xABC, "client", 1, 20.0, 80.0, {}),
        Span("dispatch", 0xABC, "server", 0, 120.0, 200.0,
             {"outcome": "ok"}),
        Span("reply", 0xABC, "server", 1, 330.0, 40.0, {"nbytes": 12}),
    ]


class TestChromeTraceExport:
    def test_events_carry_metadata_and_complete_events(self):
        events = chrome_trace_events(_sample_spans())
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        names = {(e["name"], e["pid"], e["tid"]) for e in metadata}
        assert ("process_name", 1, 0) in names
        assert ("process_name", 2, 0) in names
        assert ("thread_name", 1, 1) in names
        assert ("thread_name", 2, 1) in names
        assert len(complete) == 4
        invoke = next(e for e in complete if e["name"] == "invoke")
        assert invoke["pid"] == 1 and invoke["tid"] == 0
        assert invoke["ts"] == 10.0 and invoke["dur"] == 500.0
        assert invoke["args"] == {
            "trace_id": "0x0000000000000abc",
            "op": "ping",
        }

    def test_round_trip_is_lossless(self):
        spans = _sample_spans()
        doc = to_chrome_trace(spans)
        assert spans_from_chrome_trace(doc) == spans
        # And survives actual JSON serialization.
        assert (
            spans_from_chrome_trace(json.loads(json.dumps(doc))) == spans
        )

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        doc = write_chrome_trace(path, _sample_spans())
        assert read_chrome_trace(path) == _sample_spans()
        assert doc["displayTimeUnit"] == "ms"

    def test_recorder_export_includes_metrics(self):
        trace = TraceRecorder()
        trace.begin("encode", trace_id=5, side="client").end()
        doc = to_chrome_trace(trace)
        assert len(spans_from_chrome_trace(doc)) == 1
        metrics = doc["otherData"]["metrics"]
        assert metrics["histograms"]["span.client.encode_us"]["count"] == 1


class TestTimelineView:
    def test_timeline_lists_lanes_in_order(self):
        text = format_timeline(_sample_spans())
        lines = text.splitlines()
        assert lines[0] == "trace 0x0000000000000abc"
        lanes = [line for line in lines if line.startswith("--")]
        assert lanes == [
            "-- client rank 0 --",
            "-- client rank 1 --",
            "-- server rank 0 --",
            "-- server rank 1 --",
        ]
        assert any("outcome=ok" in line for line in lines)
        assert "(no spans)" == format_timeline([])

    def test_timeline_attrs_can_be_suppressed(self):
        text = format_timeline(_sample_spans(), attrs=False)
        assert "outcome=ok" not in text

    def test_summarize_aggregates_per_stage(self):
        summary = summarize(_sample_spans())
        assert summary["traces"] == 1
        assert summary["ranks"] == [0, 1]
        assert summary["stages"]["server.dispatch"]["count"] == 1
        assert summary["stages"]["client.invoke"]["total_us"] == 500.0
        assert "server.dispatch" in format_summary(_sample_spans())
