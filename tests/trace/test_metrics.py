"""Counters, histograms, registry sources, and snapshot isolation."""

import pytest

from repro.trace import MetricsRegistry
from repro.trace.metrics import Counter, DEFAULT_BOUNDS, Histogram


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == 5


class TestHistogram:
    def test_buckets_mean_min_max(self):
        hist = Histogram("h", bounds=(10.0, 100.0))
        for value in (1.0, 10.0, 99.0, 5000.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["total"] == pytest.approx(5110.0)
        assert snap["mean"] == pytest.approx(1277.5)
        assert snap["min"] == 1.0
        assert snap["max"] == 5000.0
        # Inclusive upper edges: 1.0 and 10.0 both land in le_10.
        assert snap["buckets"] == {
            "le_10": 2,
            "le_100": 1,
            "overflow": 1,
        }

    def test_empty_histogram_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] == 0.0
        assert snap["min"] is None and snap["max"] is None

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10.0, 10.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(100.0, 10.0))

    def test_default_bounds_cover_microsecond_decades(self):
        assert DEFAULT_BOUNDS[0] == 10.0
        assert DEFAULT_BOUNDS[-1] == 1e7


class TestMetricsRegistry:
    def test_create_on_first_use_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")

    def test_sources_fold_into_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.register_source("orb", lambda: {"ft": {"retries": 2}})
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == 1
        assert snap["sources"]["orb"] == {"ft": {"retries": 2}}
        assert "sources" not in registry.snapshot(include_sources=False)
        registry.unregister_source("orb")
        assert registry.snapshot()["sources"] == {}
        # Unregistering an unknown source is a no-op, not an error.
        registry.unregister_source("nope")

    def test_snapshot_is_isolated_both_directions(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.histogram("h").observe(5.0)
        source_data = {"nested": {"k": 1}}
        registry.register_source("src", lambda: source_data)
        snap = registry.snapshot()

        # Later activity must not mutate the already-taken snapshot...
        registry.counter("n").inc(10)
        registry.histogram("h").observe(7.0)
        source_data["nested"]["k"] = 99
        assert snap["counters"]["n"] == 1
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["sources"]["src"]["nested"]["k"] == 1

        # ...and poisoning the snapshot must not corrupt live state.
        snap["counters"]["n"] = -1
        snap["histograms"]["h"]["buckets"]["le_10"] = -1
        assert registry.snapshot()["counters"]["n"] == 11
        assert (
            registry.snapshot()["histograms"]["h"]["buckets"]["le_10"] == 2
        )
