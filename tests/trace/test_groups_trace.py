"""Tracing for replicated-group bindings: the ``replica=`` span tag
and trace-id continuity across a client-side failover."""

import pytest

from repro import ORB, FtPolicy, compile_idl
from repro.groups import ShardedNaming

GROUPS_TRACE_IDL = """
interface counter {
    double add(in double x);
};
"""

RETRYING = FtPolicy(
    max_retries=1, backoff_base_ms=1.0, backoff_cap_ms=5.0
)


@pytest.fixture(scope="module")
def idl():
    return compile_idl(
        GROUPS_TRACE_IDL, module_name="groups_trace_idl"
    )


def _factory(idl):
    class CounterServant(idl.counter_skel):
        def __init__(self):
            self.total = 0.0

        def add(self, x):
            self.total += x
            return self.total

    return lambda ctx: CounterServant()


class TestReplicaTag:
    def test_group_client_spans_carry_the_replica(self, idl):
        naming = ShardedNaming(shards=2)
        with ORB(
            "groups-tag", naming=naming, timeout=0.3, trace=True
        ) as orb:
            group = orb.serve_replicated(
                "ctr", _factory(idl), replicas=3
            )
            runtime = orb.client_runtime()
            try:
                proxy = idl.counter._group_bind(
                    "ctr", runtime, ft_policy=RETRYING
                )
                assert proxy.add(1.0) == 1.0
                target = proxy._group.current_replica()
            finally:
                runtime.close()
                group.shutdown()
            invoke = orb.trace.spans(side="client", name="invoke")[0]
            assert invoke.attrs["replica"] == target
            # The bind span records the group binding mode.
            bind = orb.trace.spans(name="bind")[0]
            assert bind.attrs["mode"] == "group_bind"

    def test_singleton_spans_stay_untagged(self, idl):
        with ORB("solo-tag", trace=True) as orb:
            orb.serve("ctr", _factory(idl), nthreads=1)
            runtime = orb.client_runtime()
            try:
                proxy = idl.counter._bind("ctr", runtime)
                assert proxy.add(2.0) == 2.0
            finally:
                runtime.close()
            for span in orb.trace.spans(side="client"):
                assert "replica" not in span.attrs


class TestFailoverContinuity:
    def test_one_trace_spans_failure_vote_and_replay(self, idl):
        naming = ShardedNaming(shards=2)
        with ORB(
            "groups-cont", naming=naming, timeout=0.3, trace=True
        ) as orb:
            group = orb.serve_replicated(
                "ctr", _factory(idl), replicas=3
            )
            runtime = orb.client_runtime()
            try:
                proxy = idl.counter._group_bind(
                    "ctr", runtime, ft_policy=RETRYING
                )
                first = proxy._group.current_replica()
                group.kill(first)
                assert proxy.add(3.0) == 3.0
                second = proxy._group.current_replica()
            finally:
                runtime.close()
                group.shutdown()

            trace = orb.trace
            (trace_id,) = trace.trace_ids()
            spans = trace.spans(trace_id=trace_id)

            # The failed attempt, the failover vote, and the replay
            # all belong to ONE logical trace.
            invokes = [s for s in spans if s.name == "invoke"]
            replicas = {s.attrs.get("replica") for s in invokes}
            assert {first, second} <= replicas

            (flip,) = [s for s in spans if s.name == "failover"]
            assert flip.attrs["failed_replica"] == first
            assert flip.attrs["replica"] == second
            assert flip.attrs["group"] == "ctr"
            assert flip.attrs["operation"] == "counter.add"

            # The metrics registry counted the flip.
            metrics = trace.metrics.snapshot()
            assert metrics["counters"]["groups.failovers"] == 1
