"""End-to-end trace correlation through the ORB.

The tentpole behaviors: one logical trace per invocation with client
and server spans correlated by the trace id propagated in the request
header; the id surviving retries and the multiport→centralized
degradation (which records an explicit ``degrade`` span naming the
engine flip); and the acceptance scenario — a collective pipelined
invocation under injected faults exporting a single correlated trace
through the Chrome-trace exporter.
"""

import threading

import numpy as np
import pytest

from repro import ORB, FtPolicy, compile_idl
from repro.ft.faults import FaultSchedule, FaultyFabric
from repro.orb import request as wire
from repro.orb.transport import Fabric
from repro.trace import (
    TraceRecorder,
    spans_from_chrome_trace,
    to_chrome_trace,
)

TRACE_IDL = """
typedef dsequence<double, 8192> vec;

interface svc {
    double ping(in double x);
    double checksum(in vec data);
};
"""


@pytest.fixture(scope="module")
def idl():
    return compile_idl(TRACE_IDL, module_name="trace_e2e_idl")


def _servant_factory(idl, calls=None):
    from repro.rts.mpi import SUM

    class Servant(idl.svc_skel):
        def ping(self, x):
            if calls is not None:
                calls.append(x)
            return x * 2.0

        def checksum(self, data):
            total = data.local_data().sum()
            if self.comm is not None:
                total = self.comm.allreduce(total, op=SUM)
            return float(total)

    return lambda ctx: Servant()


class Valve:
    """Injects ``action`` on the listed frame kinds while armed, up to
    ``limit`` times (deterministic fault injection for exact-frame
    scenarios)."""

    def __init__(self, action, kinds, limit=None):
        self.action = action
        self.kinds = frozenset(kinds)
        self.limit = limit
        self.injected = 0
        self.armed = False
        self._lock = threading.Lock()

    def decide(self, kind):
        with self._lock:
            if not self.armed or kind not in self.kinds:
                return ()
            if self.limit is not None and self.injected >= self.limit:
                return ()
            self.injected += 1
            return (self.action,)


class TestSerialTraceCorrelation:
    def test_client_and_server_spans_share_one_trace_id(self, idl):
        with ORB("trace-serial", trace=True) as orb:
            orb.serve("svc", _servant_factory(idl), nthreads=1)
            runtime = orb.client_runtime(label="traced")
            try:
                proxy = idl.svc._bind("svc", runtime)
                assert proxy.ping(21.0) == 42.0
            finally:
                runtime.close()
            trace = orb.trace
            (trace_id,) = trace.trace_ids()
            spans = trace.spans(trace_id=trace_id)
            by_side = {
                side: {s.name for s in spans if s.side == side}
                for side in ("client", "server")
            }
            assert {"encode", "transfer", "reply", "invoke"} <= by_side[
                "client"
            ]
            assert {"transfer", "dispatch", "reply"} <= by_side["server"]
            invoke = trace.spans(trace_id=trace_id, name="invoke")[0]
            dispatch = trace.spans(trace_id=trace_id, name="dispatch")[0]
            assert invoke.attrs["op"] == "ping"
            assert dispatch.attrs["outcome"] == "ok"
            # The id in the server's spans came off the wire: it
            # equals the request id the client stamped.
            assert trace_id == invoke.attrs["request_id"]
            # The bind span is recorded too (no trace id: binding
            # precedes any request).
            assert trace.spans(name="bind")[0].attrs["object"] == "svc"

    def test_tracing_off_records_nothing_and_stats_omit_trace(self, idl):
        with ORB("trace-off") as orb:
            orb.serve("svc", _servant_factory(idl), nthreads=1)
            runtime = orb.client_runtime(label="plain")
            try:
                proxy = idl.svc._bind("svc", runtime)
                assert proxy.ping(1.0) == 2.0
            finally:
                runtime.close()
            assert orb.trace is None
            assert "trace" not in orb.stats()

    def test_shared_recorder_across_orbs(self, idl):
        # One recorder passed to two ORBs (the multi-process pattern):
        # both feed the same span store and metrics registry.
        recorder = TraceRecorder()
        naming_orb = ORB("trace-a", trace=recorder)
        with naming_orb as orb:
            orb.serve("svc", _servant_factory(idl), nthreads=1)
            runtime = orb.client_runtime(label="shared")
            try:
                proxy = idl.svc._bind("svc", runtime)
                proxy.ping(1.0)
            finally:
                runtime.close()
        assert orb.trace is recorder
        assert len(recorder) > 0


class TestCollectiveTraceCorrelation:
    def test_all_ranks_of_both_sides_form_one_trace(self, idl):
        nthreads = 2
        with ORB("trace-coll", trace=True) as orb:
            orb.serve("svc", _servant_factory(idl), nthreads=nthreads)

            def run(c):
                proxy = idl.svc._spmd_bind(
                    "svc", c.runtime, transfer="multiport"
                )
                seq = idl.vec.from_global(
                    np.ones(64, dtype=np.float64), comm=c.comm
                )
                return proxy.checksum(seq)

            results = orb.run_spmd_client(nthreads, run)
            assert results == [64.0, 64.0]
            trace = orb.trace
            (trace_id,) = trace.trace_ids()
            spans = trace.spans(trace_id=trace_id)
            # Every rank on each side contributed spans to the one
            # logical trace.
            for side in ("client", "server"):
                ranks = {s.rank for s in spans if s.side == side}
                assert ranks == set(range(nthreads))
            # All ranks executed the same stages (the client encode
            # span is rank 0 only: it encodes the one header).
            for name in ("invoke", "transfer"):
                assert len(
                    trace.spans(trace_id=trace_id, side="client", name=name)
                ) == nthreads
            for name in ("transfer", "dispatch", "reply"):
                assert len(
                    trace.spans(trace_id=trace_id, side="server", name=name)
                ) == nthreads


class TestRetryTracePropagation:
    def test_trace_id_survives_retries_and_retry_spans_record(self, idl):
        valve = Valve("drop", kinds=("request",), limit=1)
        policy = FtPolicy(
            max_retries=4, backoff_base_ms=1.0, backoff_cap_ms=5.0
        )
        calls = []
        with ORB(
            "trace-retry",
            fabric=FaultyFabric(Fabric("trace-retry"), valve),
            timeout=0.3,
            trace=True,
        ) as orb:
            orb.serve("svc", _servant_factory(idl, calls), nthreads=1)
            runtime = orb.client_runtime(label="retry")
            try:
                proxy = idl.svc._bind("svc", runtime, ft_policy=policy)
                valve.armed = True
                assert proxy.ping(21.0) == 42.0
            finally:
                runtime.close()
            assert valve.injected == 1
            trace = orb.trace
            (trace_id,) = trace.trace_ids()
            retries = trace.spans(trace_id=trace_id, name="retry")
            assert len(retries) == 1
            assert retries[0].attrs == {
                "attempt": 1,
                "failure": "timeout",
            }
            # Both attempts' reply waits belong to the same trace: the
            # id is the first attempt's request id and retries reuse it.
            attempts = [
                s.attrs["attempt"]
                for s in trace.spans(trace_id=trace_id, name="reply",
                                     side="client")
            ]
            assert attempts == [0, 1]
            # The server executed under the retried request and its
            # spans still correlate.
            assert trace.spans(trace_id=trace_id, side="server",
                               name="dispatch")
            assert trace.spans(trace_id=trace_id, name="invoke")[0].attrs[
                "attempts"
            ] == 1
            # The ft counters mirrored into the metrics registry.
            counters = trace.metrics.snapshot()["counters"]
            assert counters["ft.retries"] >= 1


class TestDegradationTrace:
    def test_engine_flip_records_degrade_span_same_trace(self, idl):
        valve = Valve("disconnect", kinds=("data",))
        policy = FtPolicy(
            max_retries=4, backoff_base_ms=1.0, backoff_cap_ms=5.0
        )
        with ORB(
            "trace-degrade",
            fabric=FaultyFabric(Fabric("trace-degrade"), valve),
            timeout=0.3,
            trace=True,
        ) as orb:
            orb.serve(
                "svc",
                _servant_factory(idl),
                nthreads=1,
                dispatch_policy="concurrent",
            )
            runtime = orb.client_runtime(label="degrade")
            try:
                proxy = idl.svc._bind(
                    "svc", runtime, transfer="multiport", ft_policy=policy
                )
                data = idl.vec.from_global([1.0, 2.0, 3.0])
                valve.armed = True
                assert proxy.checksum(data) == 6.0
            finally:
                runtime.close()
            trace = orb.trace
            (trace_id,) = trace.trace_ids()
            (degrade,) = trace.spans(trace_id=trace_id, name="degrade")
            assert degrade.attrs == {
                "from_engine": wire.MODE_MULTIPORT,
                "to_engine": wire.MODE_CENTRALIZED,
            }
            # Both engines' invoke spans share the trace: the original
            # multiport attempt and the centralized fallback.
            engines = {
                s.attrs["engine"]
                for s in trace.spans(trace_id=trace_id, name="invoke")
            }
            assert engines == {wire.MODE_MULTIPORT, wire.MODE_CENTRALIZED}
            # The server only ever dispatched the centralized fallback
            # (the multiport data never arrived), under the same id.
            dispatched = trace.spans(trace_id=trace_id, side="server",
                                     name="dispatch")
            assert dispatched and all(
                s.attrs["outcome"] == "ok" for s in dispatched
            )


class TestAcceptanceExportedCollectiveTrace:
    def test_faulted_pipelined_collective_exports_one_trace(self, idl):
        """ISSUE acceptance: a collective pipelined invocation under
        injected faults exports a single correlated trace — client and
        server spans for every rank, retry spans visible — via the
        Chrome-trace exporter."""
        nthreads = 2
        schedule = FaultSchedule(seed=97, drop=0.08)
        faulty = FaultyFabric(Fabric("trace-acc"), schedule)
        policy = FtPolicy(
            max_retries=10, backoff_base_ms=1.0, backoff_cap_ms=10.0
        )
        with ORB(
            "trace-acc", fabric=faulty, timeout=0.3, trace=True
        ) as orb:
            orb.serve(
                "svc",
                _servant_factory(idl),
                nthreads=nthreads,
                reply_cache_bytes=1 << 20,
            )

            def run(c):
                proxy = idl.svc._spmd_bind(
                    "svc",
                    c.runtime,
                    transfer="multiport",
                    ft_policy=policy,
                )
                seq = idl.vec.from_global(
                    np.ones(256, dtype=np.float64), comm=c.comm
                )
                # Pipelined: several invocations in flight at once.
                futures = [proxy.checksum_nb(seq) for _ in range(8)]
                return [f.value(timeout=120.0) for f in futures]

            results = orb.run_spmd_client(nthreads, run, timeout=300.0)
            assert results[0] == results[1] == [256.0] * 8
            assert faulty.fault_stats()["drop"] > 0

            trace = orb.trace
            trace_ids = trace.trace_ids()
            assert len(trace_ids) == 8  # one logical trace per invocation
            retried = [
                t for t in trace_ids if trace.spans(trace_id=t, name="retry")
            ]
            assert retried, "seeded faults produced no retries"

            doc = to_chrome_trace(trace)
            exported = spans_from_chrome_trace(doc)
            target = retried[0]
            one_trace = [s for s in exported if s.trace_id == target]
            # Single correlated trace: both sides, every rank, with
            # the retry spans visible after the export round-trip.
            assert {(s.side, s.rank) for s in one_trace} >= {
                (side, rank)
                for side in ("client", "server")
                for rank in range(nthreads)
            }
            assert any(s.name == "retry" for s in one_trace)
            assert any(
                s.name == "dispatch" and s.side == "server"
                for s in one_trace
            )
            # The ride-along metrics made it into the document.
            counters = doc["otherData"]["metrics"]["counters"]
            assert counters["ft.retries"] >= 1
