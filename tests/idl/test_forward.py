"""Forward-declared interfaces: ``interface name;``."""

import pytest

from repro.idl.compiler import analyze_idl, compile_idl
from repro.idl.errors import IdlSemanticError


def test_forward_then_definition_compiles():
    compiled = compile_idl(
        "interface cb;\n"
        "interface registry {\n"
        "  void subscribe(in cb listener);\n"
        "};\n"
        "interface cb {\n"
        "  oneway void notify(in long event);\n"
        "};\n"
    )
    assert hasattr(compiled.module, "registry")
    assert hasattr(compiled.module, "cb")


def test_undefined_forward_is_a_semantic_error():
    with pytest.raises(IdlSemanticError) as err:
        analyze_idl("interface ghost;\n")
    assert "ghost" in str(err.value)
    assert "never defined" in str(err.value)
    assert err.value.line == 1


def test_repeated_forward_declarations_are_legal():
    unit = analyze_idl(
        "interface node;\n"
        "interface node;\n"
        "interface node { void visit(); };\n"
    )
    assert [e.name for e in unit.body] == ["node"]


def test_forward_after_definition_is_legal():
    unit = analyze_idl(
        "interface node { void visit(); };\n"
        "interface node;\n"
    )
    assert [e.name for e in unit.body] == ["node"]


def test_forward_clashing_with_other_kind_is_rejected():
    with pytest.raises(IdlSemanticError):
        analyze_idl("typedef long node;\ninterface node;\n")


def test_earliest_unresolved_forward_is_reported():
    with pytest.raises(IdlSemanticError) as err:
        analyze_idl(
            "interface first;\n"
            "interface second;\n"
        )
    assert "first" in str(err.value)
    assert err.value.line == 1
