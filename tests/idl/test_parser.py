"""Parser unit tests over the AST."""

import pytest

from repro.idl import ast
from repro.idl.errors import IdlSyntaxError
from repro.idl.parser import parse


def first(source):
    return parse(source).body[0]


class TestInterfaces:
    def test_paper_example(self):
        spec = parse(
            """
            typedef dsequence<double, 1024> diff_array;
            interface diff_object {
                void diffusion(in long timestep, inout diff_array darray);
            };
            """
        )
        typedef, interface = spec.body
        assert isinstance(typedef, ast.Typedef)
        assert isinstance(typedef.type, ast.DSequenceType)
        assert isinstance(interface, ast.Interface)
        op = interface.body[0]
        assert op.name == "diffusion"
        assert [(p.direction, p.name) for p in op.params] == [
            ("in", "timestep"),
            ("inout", "darray"),
        ]

    def test_empty_interface(self):
        node = first("interface empty {};")
        assert node.body == []

    def test_inheritance(self):
        node = first(
            "interface c : a, b::x {};"
        )
        assert [b.text for b in node.bases] == ["a", "b::x"]

    def test_oneway(self):
        node = first("interface i { oneway void ping(); };")
        assert node.body[0].oneway

    def test_raises_clause(self):
        node = first(
            "interface i { void f() raises (E1, m::E2); };"
        )
        assert [e.text for e in node.body[0].raises] == ["E1", "m::E2"]

    def test_attributes(self):
        node = first(
            """
            interface i {
                attribute long counter;
                readonly attribute string name;
            };
            """
        )
        counter, name = node.body
        assert not counter.readonly and name.readonly
        assert isinstance(name.type, ast.StringType)

    def test_return_types(self):
        node = first(
            "interface i { double f(); sequence<long> g(); };"
        )
        assert node.body[0].return_type == ast.BasicType("double")
        assert isinstance(node.body[1].return_type, ast.SequenceType)

    def test_param_requires_direction(self):
        with pytest.raises(IdlSyntaxError):
            parse("interface i { void f(long x); };")

    def test_missing_semicolon(self):
        with pytest.raises(IdlSyntaxError):
            parse("interface i {}")


class TestTypes:
    def test_basic_types(self):
        node = first(
            """
            struct s {
                short a; long b; long long c;
                unsigned short d; unsigned long e;
                unsigned long long f;
                float g; double h; boolean i; char j; octet k;
            };
            """
        )
        names = [m.type.name for m in node.members]
        assert names == [
            "short", "long", "longlong", "ushort", "ulong",
            "ulonglong", "float", "double", "boolean", "char", "octet",
        ]

    def test_long_double_rejected(self):
        with pytest.raises(IdlSyntaxError):
            parse("struct s { long double x; };")

    def test_unsigned_requires_integer(self):
        with pytest.raises(IdlSyntaxError):
            parse("struct s { unsigned float x; };")

    def test_bounded_string(self):
        node = first("typedef string<16> short_name;")
        assert node.type.bound == ast.Literal(16)

    def test_sequence_forms(self):
        spec = parse(
            """
            typedef sequence<double> a;
            typedef sequence<long, 8> b;
            typedef sequence<sequence<long>> c;
            """
        )
        a, b, c = spec.body
        assert a.type.bound is None
        assert b.type.bound == ast.Literal(8)
        assert isinstance(c.type.element, ast.SequenceType)

    def test_dsequence_forms(self):
        spec = parse(
            """
            typedef dsequence<double> a;
            typedef dsequence<double, 1024> b;
            typedef dsequence<double, 1024, block> c;
            typedef dsequence<double, proportions(2, 4, 2, 4)> d;
            typedef dsequence<double, 512, proportions(1, 3)> e;
            """
        )
        a, b, c, d, e = spec.body
        assert a.type.bound is None and a.type.dist is None
        assert b.type.bound == ast.Literal(1024)
        assert c.type.dist == ast.DistSpec("block")
        assert d.type.bound is None
        assert d.type.dist == ast.DistSpec("proportions", (2, 4, 2, 4))
        assert e.type.bound == ast.Literal(512)
        assert e.type.dist == ast.DistSpec("proportions", (1, 3))

    def test_array_declarator(self):
        node = first("typedef long matrix[3][4];")
        assert node.array_dims == (ast.Literal(3), ast.Literal(4))

    def test_scoped_names(self):
        node = first("typedef ::top::mid::t alias;")
        assert node.type.parts == ("", "top", "mid", "t")


class TestDeclarations:
    def test_module_nesting(self):
        node = first(
            "module outer { module inner { enum E { A }; }; };"
        )
        assert isinstance(node.body[0], ast.Module)
        assert isinstance(node.body[0].body[0], ast.Enum)

    def test_empty_module_rejected(self):
        with pytest.raises(IdlSyntaxError):
            parse("module m {};")

    def test_struct_multi_declarator(self):
        node = first("struct p { double x, y, z; };")
        assert [m.name for m in node.members] == ["x", "y", "z"]

    def test_empty_struct_rejected(self):
        with pytest.raises(IdlSyntaxError):
            parse("struct s {};")

    def test_enum(self):
        node = first("enum color { RED, GREEN, BLUE };")
        assert node.members == ("RED", "GREEN", "BLUE")

    def test_exception_may_be_empty(self):
        node = first("exception oops {};")
        assert node.members == []

    def test_const(self):
        node = first("const long SIZE = 2 * 512;")
        assert isinstance(node.expr, ast.BinaryOp)

    def test_empty_specification_rejected(self):
        with pytest.raises(IdlSyntaxError):
            parse("   // nothing\n")

    def test_junk_at_top_level(self):
        with pytest.raises(IdlSyntaxError):
            parse("wibble;")


class TestConstExpressions:
    def expr(self, text):
        return first(f"const long x = {text};").expr

    def test_precedence_shape(self):
        node = self.expr("1 + 2 * 3")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_parentheses(self):
        node = self.expr("(1 + 2) * 3")
        assert node.op == "*"
        assert node.left.op == "+"

    def test_unary(self):
        node = self.expr("-~+5")
        assert node.op == "-"
        assert node.operand.op == "~"

    def test_or_xor_and_levels(self):
        node = self.expr("1 | 2 ^ 3 & 4")
        assert node.op == "|"
        assert node.right.op == "^"
        assert node.right.right.op == "&"

    def test_const_refs(self):
        node = self.expr("OTHER + m::N")
        assert node.left == ast.ConstRef(("OTHER",), node.left.line)
        assert node.right.parts == ("m", "N")

    def test_literals(self):
        assert self.expr("TRUE") == ast.Literal(True)
        assert self.expr("0x10") == ast.Literal(16)
        assert first('const string s = "hi";').expr == ast.Literal("hi")
        assert first("const char c = 'z';").expr == ast.Literal("z")
