"""Semantic-analysis tests: resolution, validation, diagnostics."""

import pytest

from repro.cdr.typecodes import (
    ArrayTC,
    DSequenceTC,
    SequenceTC,
    StructTC,
    TC_DOUBLE,
    TC_LONG,
)
from repro.idl.compiler import analyze_idl
from repro.idl.errors import IdlSemanticError
from repro.idl.semantics import (
    ConstEntity,
    EnumEntity,
    InterfaceEntity,
    TypedefEntity,
)
from repro.orb.operation import Direction


class TestResolution:
    def test_typedef_resolves_in_operation(self):
        unit = analyze_idl(
            """
            typedef dsequence<double, 1024> diff_array;
            interface diff_object {
                void diffusion(in long t, inout diff_array a);
            };
            """
        )
        iface = unit.interfaces()[0]
        op = iface.all_operations["diffusion"]
        assert op.params[0].typecode is TC_LONG
        assert isinstance(op.params[1].typecode, DSequenceTC)
        assert op.params[1].typecode.bound == 1024
        assert op.params[1].direction is Direction.INOUT

    def test_unknown_type(self):
        with pytest.raises(IdlSemanticError, match="unknown type"):
            analyze_idl("interface i { void f(in missing x); };")

    def test_scoped_resolution_across_modules(self):
        unit = analyze_idl(
            """
            module a { typedef long t; };
            interface i { void f(in a::t x); };
            """
        )
        op = unit.interfaces()[0].all_operations["f"]
        assert op.params[0].typecode is TC_LONG

    def test_enclosing_scope_visible(self):
        unit = analyze_idl(
            """
            typedef double outer_t;
            module m {
                interface i { outer_t f(); };
            };
            """
        )
        op = unit.interfaces()[0].all_operations["f"]
        assert op.return_tc is TC_DOUBLE

    def test_absolute_names(self):
        unit = analyze_idl(
            """
            typedef long t;
            module m {
                typedef double t;
                interface i { void f(in ::t x, in t y); };
            };
            """
        )
        op = unit.interfaces()[0].all_operations["f"]
        assert op.params[0].typecode is TC_LONG
        assert op.params[1].typecode is TC_DOUBLE

    def test_duplicate_names_rejected(self):
        with pytest.raises(IdlSemanticError, match="already declared"):
            analyze_idl("typedef long x; typedef double x;")

    def test_repo_ids(self):
        unit = analyze_idl("module m { interface i {}; };")
        assert unit.interfaces()[0].repo_id == "IDL:m/i:1.0"


class TestInterfaceRules:
    def test_inherited_operations_flattened(self):
        unit = analyze_idl(
            """
            interface base { void ping(); };
            interface derived : base { void pong(); };
            """
        )
        derived = unit.interfaces()[1]
        assert set(derived.all_operations) == {"ping", "pong"}
        assert [o.name for o in derived.own_operations] == ["pong"]

    def test_diamond_inheritance_shared_op(self):
        unit = analyze_idl(
            """
            interface root { void ping(); };
            interface a : root {};
            interface b : root {};
            interface d : a, b {};
            """
        )
        assert set(unit.interfaces()[3].all_operations) == {"ping"}

    def test_conflicting_inherited_ops(self):
        with pytest.raises(IdlSemanticError, match="conflicting"):
            analyze_idl(
                """
                interface a { void f(); };
                interface b { void f(in long x); };
                interface c : a, b {};
                """
            )

    def test_redefining_inherited_op(self):
        with pytest.raises(IdlSemanticError, match="redefines"):
            analyze_idl(
                """
                interface a { void f(); };
                interface b : a { void f(); };
                """
            )

    def test_duplicate_op(self):
        with pytest.raises(IdlSemanticError, match="declared twice"):
            analyze_idl("interface i { void f(); void f(); };")

    def test_inheriting_non_interface(self):
        with pytest.raises(IdlSemanticError, match="not an interface"):
            analyze_idl("typedef long t; interface i : t {};")

    def test_duplicate_base(self):
        with pytest.raises(IdlSemanticError, match="twice"):
            analyze_idl(
                "interface a {}; interface b : a, a {};"
            )

    def test_oneway_rules(self):
        with pytest.raises(IdlSemanticError, match="oneway"):
            analyze_idl("interface i { oneway long f(); };")
        with pytest.raises(IdlSemanticError, match="oneway"):
            analyze_idl(
                "interface i { oneway void f(out long x); };"
            )

    def test_raises_must_name_exception(self):
        with pytest.raises(IdlSemanticError, match="not an exception"):
            analyze_idl(
                "typedef long t; interface i { void f() raises (t); };"
            )

    def test_attributes_become_operations(self):
        unit = analyze_idl(
            """
            interface i {
                attribute long counter;
                readonly attribute double level;
            };
            """
        )
        ops = unit.interfaces()[0].all_operations
        assert "_get_counter" in ops and "_set_counter" in ops
        assert "_get_level" in ops and "_set_level" not in ops

    def test_interface_as_parameter_type(self):
        unit = analyze_idl(
            """
            interface peer {};
            interface i { void connect(in peer other); };
            """
        )
        op = unit.interfaces()[1].all_operations["connect"]
        assert op.params[0].typecode.kind == "objref"


class TestTypeRules:
    def test_dsequence_needs_numeric_element(self):
        with pytest.raises(IdlSemanticError, match="fixed-width"):
            analyze_idl("typedef dsequence<string> bad;")

    def test_dsequence_struct_element_rejected(self):
        with pytest.raises(IdlSemanticError, match="fixed-width"):
            analyze_idl(
                "struct s { long x; }; typedef dsequence<s> bad;"
            )

    def test_dsequence_cannot_nest_in_struct(self):
        with pytest.raises(IdlSemanticError, match="struct"):
            analyze_idl(
                """
                typedef dsequence<double> d;
                struct s { d member; };
                """
            )

    def test_dsequence_template_recorded(self):
        unit = analyze_idl(
            "typedef dsequence<double, 8, proportions(2, 4, 2)> t;"
        )
        entity = unit.find("t")
        assert entity.typecode.template == ("proportions", (2, 4, 2))

    def test_zero_proportions_rejected(self):
        with pytest.raises(IdlSemanticError, match="positive"):
            analyze_idl("typedef dsequence<double, proportions(0, 0)> t;")

    def test_sequence_of_void_rejected(self):
        # 'void' is not a type_spec, so this fails in the parser; the
        # semantic guard is reached through a typedef of an operation
        # return — verify via arrays instead.
        unit = analyze_idl("typedef long grid[4][2];")
        tc = unit.find("grid").typecode
        assert isinstance(tc, ArrayTC) and tc.length == 4
        assert isinstance(tc.element, ArrayTC) and tc.element.length == 2

    def test_struct_member_arrays(self):
        unit = analyze_idl("struct s { double row[8]; };")
        tc = unit.find("s").typecode
        assert isinstance(tc, StructTC)
        assert isinstance(tc.fields[0][1], ArrayTC)

    def test_duplicate_struct_member(self):
        with pytest.raises(IdlSemanticError, match="declared twice"):
            analyze_idl("struct s { long x; double x; };")

    def test_bounds_from_constants(self):
        unit = analyze_idl(
            """
            const long N = 1 << 10;
            typedef dsequence<double, N> t;
            typedef sequence<long, N / 2> u;
            """
        )
        assert unit.find("t").typecode.bound == 1024
        assert unit.find("u").typecode.bound == 512

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(IdlSemanticError, match="positive"):
            analyze_idl("typedef sequence<long, 0> t;")

    def test_non_integer_bound_rejected(self):
        with pytest.raises(IdlSemanticError, match="integer"):
            analyze_idl("typedef sequence<long, 1.5> t;")


class TestConstants:
    def value(self, decls, name="x"):
        unit = analyze_idl(decls)
        entity = unit.find(name)
        assert isinstance(entity, ConstEntity)
        return entity.value

    def test_arithmetic(self):
        assert self.value("const long x = 2 + 3 * 4;") == 14
        assert self.value("const long x = (2 + 3) * 4;") == 20
        assert self.value("const long x = 7 / 2;") == 3
        assert self.value("const long x = 7 % 2;") == 1
        assert self.value("const double x = 7.0 / 2;") == 3.5

    def test_bitwise(self):
        assert self.value("const long x = 1 << 4 | 3;") == 19
        assert self.value("const long x = 0xFF & 0x0F;") == 0x0F
        assert self.value("const long x = 5 ^ 1;") == 4
        assert self.value("const long x = ~0;") == -1

    def test_reference_chains(self):
        assert (
            self.value(
                "const long a = 6; const long b = a * 7; "
                "const long x = b - 2;"
            )
            == 40
        )

    def test_string_concat(self):
        assert (
            self.value('const string x = "foo" + "bar";') == "foobar"
        )

    def test_enum_member_as_constant(self):
        value = self.value(
            "enum color { RED, GREEN }; const color x = GREEN;"
        )
        assert value == "GREEN"

    def test_range_check(self):
        with pytest.raises(IdlSemanticError, match="out of range"):
            analyze_idl("const short x = 70000;")

    def test_type_mismatch(self):
        with pytest.raises(IdlSemanticError, match="integer"):
            analyze_idl('const long x = "nope";')
        with pytest.raises(IdlSemanticError, match="TRUE or FALSE"):
            analyze_idl("const boolean x = 1;")

    def test_division_by_zero(self):
        with pytest.raises(IdlSemanticError, match="zero"):
            analyze_idl("const long x = 1 / 0;")

    def test_unknown_const_ref(self):
        with pytest.raises(IdlSemanticError, match="not a constant"):
            analyze_idl("const long x = missing;")

    def test_bad_operand_types(self):
        with pytest.raises(IdlSemanticError):
            analyze_idl('const long x = "a" * 2;')
        with pytest.raises(IdlSemanticError):
            analyze_idl("const long x = 1.5 << 2;")
