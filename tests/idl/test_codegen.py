"""Code-generation tests: the shape and behaviour of generated modules."""

import numpy as np
import pytest

from repro.cdr import decode_value, encode_value
from repro.cdr.typecodes import DSequenceTC, StructTC
from repro.dist import DistributedSequence, Proportions
from repro.idl import compile_idl, compile_idl_module, generate_python
from repro.idl.errors import IdlSemanticError
from repro.orb.adapter import Servant
from repro.orb.operation import UserException, find_exception_class
from repro.orb.proxy import ClientProxy

PAPER_IDL = """
typedef dsequence<double, 1024> diff_array;
interface diff_object {
    void diffusion(in long timestep, inout diff_array darray);
};
"""


class TestGeneratedModule:
    def test_paper_example_compiles(self):
        compiled = compile_idl(PAPER_IDL)
        assert issubclass(compiled.diff_object, ClientProxy)
        assert issubclass(compiled.diff_object_skel, Servant)
        assert compiled.diff_array.bound == 1024

    def test_generated_source_is_python(self):
        text = generate_python(PAPER_IDL)
        compile(text, "<test>", "exec")
        assert "class diff_object(_ClientProxy):" in text
        assert "class diff_object_skel(_Servant):" in text

    def test_all_lists_public_names(self):
        compiled = compile_idl(PAPER_IDL)
        assert sorted(compiled.module.__all__) == [
            "diff_array",
            "diff_object",
            "diff_object_skel",
        ]

    def test_proxy_has_blocking_and_nb_methods(self):
        compiled = compile_idl(PAPER_IDL)
        assert hasattr(compiled.diff_object, "diffusion")
        assert hasattr(compiled.diff_object, "diffusion_nb")

    def test_operations_table(self):
        compiled = compile_idl(PAPER_IDL)
        spec = compiled.diff_object._operations["diffusion"]
        assert spec.params[1].distributed
        assert compiled.diff_object._repo_id == "IDL:diff_object:1.0"

    def test_skeleton_shares_operation_table(self):
        compiled = compile_idl(PAPER_IDL)
        assert (
            compiled.diff_object._operations
            is compiled.diff_object_skel._operations
        )

    def test_compile_idl_module_registers(self):
        import sys

        module = compile_idl_module(PAPER_IDL, "test_pardis_gen")
        try:
            assert sys.modules["test_pardis_gen"] is module
        finally:
            del sys.modules["test_pardis_gen"]

    def test_missing_attribute_message(self):
        compiled = compile_idl(PAPER_IDL)
        with pytest.raises(AttributeError, match="no name"):
            compiled.not_there

    def test_keyword_collision_rejected(self):
        with pytest.raises(IdlSemanticError, match="keyword"):
            compile_idl("typedef long lambda;")


class TestTypedefs:
    def test_plain_typedef_is_typecode(self):
        compiled = compile_idl("typedef sequence<long> numbers;")
        data = decode_value(
            compiled.numbers, encode_value(compiled.numbers, [1, 2, 3])
        )
        np.testing.assert_array_equal(data, [1, 2, 3])

    def test_dsequence_factory_create(self):
        compiled = compile_idl("typedef dsequence<double, 64> t;")
        seq = compiled.t.create()
        assert isinstance(seq, DistributedSequence)
        assert seq.length() == 64

    def test_dsequence_unbounded_needs_length(self):
        compiled = compile_idl("typedef dsequence<double> t;")
        with pytest.raises(ValueError, match="length"):
            compiled.t.create()
        assert compiled.t.create(10).length() == 10

    def test_dsequence_preset_distribution_is_frozen(self):
        from repro.rts import spmd_run

        compiled = compile_idl(
            "typedef dsequence<double, 12, proportions(1, 2, 3)> t;"
        )
        assert compiled.t.preset_template == Proportions(1, 2, 3)

        def body(ctx):
            seq = compiled.t.create(comm=ctx.comm)
            assert seq.frozen
            return seq.local_length()

        # The preset binds a matching 3-thread group...
        assert spmd_run(3, body) == [2, 4, 6]
        with pytest.raises(ValueError, match="preset"):
            compiled.t.create(template=Proportions(1, 1, 1))

    def test_dsequence_preset_ignored_for_other_group_sizes(self):
        from repro.rts import spmd_run

        compiled = compile_idl(
            "typedef dsequence<double, 12, proportions(1, 2, 3)> t;"
        )
        # ... but a 2-thread client falls back to blockwise and stays
        # redistributable (the preset describes the other party).
        def body(ctx):
            seq = compiled.t.create(comm=ctx.comm)
            assert not seq.frozen
            return seq.local_length()

        assert spmd_run(2, body) == [6, 6]
        # Serial (non-distributed mapping): everything local.
        serial = compiled.t.create()
        assert serial.local_length() == 12
        assert not serial.frozen

    def test_dsequence_adopt_casts_dtype(self):
        compiled = compile_idl("typedef dsequence<float> t;")
        seq = compiled.t.adopt([1, 2, 3])
        assert seq.dtype == np.float32

    def test_dsequence_element_types(self):
        compiled = compile_idl(
            """
            typedef dsequence<long> ints;
            typedef dsequence<octet> bytes_;
            """
        )
        assert compiled.ints.dtype == np.int32
        assert compiled.bytes_.dtype == np.uint8


class TestStructsEnumsExceptions:
    def test_struct_factory(self):
        compiled = compile_idl("struct point { double x; double y; };")
        value = compiled.point(1.0, y=2.0)
        assert value == {"x": 1.0, "y": 2.0}
        assert isinstance(compiled.point.typecode, StructTC)

    def test_struct_factory_validation(self):
        compiled = compile_idl("struct point { double x; double y; };")
        with pytest.raises(TypeError, match="missing"):
            compiled.point(1.0)
        with pytest.raises(TypeError, match="no field"):
            compiled.point(x=1.0, y=2.0, z=3.0)
        with pytest.raises(TypeError, match="twice"):
            compiled.point(1.0, x=2.0, y=0.0)

    def test_enum_class(self):
        compiled = compile_idl("enum color { RED, GREEN, BLUE };")
        assert compiled.color.GREEN == "GREEN"
        assert compiled.color._members == ("RED", "GREEN", "BLUE")

    def test_exception_class(self):
        compiled = compile_idl(
            "exception failed { long code; string why; };"
        )
        exc = compiled.failed(code=7, why="broken")
        assert isinstance(exc, UserException)
        assert exc.code == 7 and exc.why == "broken"
        assert exc.members() == {"code": 7, "why": "broken"}
        assert "failed" in str(exc)

    def test_exception_registered_by_repo_id(self):
        compiled = compile_idl("exception lost {};")
        assert find_exception_class("IDL:lost:1.0") is compiled.lost

    def test_consts(self):
        compiled = compile_idl(
            """
            const long SIZE = 1 << 8;
            const string NAME = "pardis";
            const boolean ON = TRUE;
            """
        )
        assert compiled.SIZE == 256
        assert compiled.NAME == "pardis"
        assert compiled.ON is True


class TestModulesAndInheritance:
    def test_module_namespace(self):
        compiled = compile_idl(
            """
            module sim {
                enum phase { INIT, RUN };
                interface engine { void step(); };
            };
            """
        )
        assert compiled.sim.phase.RUN == "RUN"
        assert issubclass(compiled.sim.engine, ClientProxy)
        assert issubclass(compiled.sim.engine_skel, Servant)

    def test_nested_modules(self):
        compiled = compile_idl(
            "module a { module b { const long N = 3; }; };"
        )
        assert compiled.a.b.N == 3

    def test_proxy_inheritance_mirrors_idl(self):
        compiled = compile_idl(
            """
            interface base { void ping(); };
            interface derived : base { void pong(); };
            """
        )
        assert issubclass(compiled.derived, compiled.base)
        assert issubclass(compiled.derived_skel, compiled.base_skel)
        assert hasattr(compiled.derived, "ping")

    def test_interface_scoped_types(self):
        compiled = compile_idl(
            """
            interface box {
                enum state { OPEN, SHUT };
                state query();
            };
            """
        )
        spec = compiled.box._operations["query"]
        assert spec.return_tc.kind == "enum"

    def test_attribute_properties(self):
        compiled = compile_idl(
            "interface i { attribute long counter; };"
        )
        assert isinstance(compiled.i.counter, property)
