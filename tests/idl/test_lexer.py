"""Lexer unit tests."""

import pytest

from repro.idl.errors import IdlSyntaxError
from repro.idl.lexer import tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_gives_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "eof"

    def test_keywords_vs_identifiers(self):
        assert kinds("interface foo") == [
            ("keyword", "interface"),
            ("ident", "foo"),
        ]

    def test_case_sensitive_keywords(self):
        # 'Interface' is an identifier, not the keyword.
        assert kinds("Interface")[0][0] == "ident"

    def test_underscored_identifiers(self):
        assert kinds("_foo __bar a_b2") == [
            ("ident", "_foo"),
            ("ident", "__bar"),
            ("ident", "a_b2"),
        ]

    def test_punctuation(self):
        assert [v for _, v in kinds("{ } ( ) ; , < > [ ]")] == [
            "{", "}", "(", ")", ";", ",", "<", ">", "[", "]",
        ]

    def test_scope_operator_is_one_token(self):
        assert kinds("a::b") == [
            ("ident", "a"),
            ("punct", "::"),
            ("ident", "b"),
        ]

    def test_shift_operators(self):
        assert [v for _, v in kinds("1 << 2 >> 3")] == [
            "1", "<<", "2", ">>", "3",
        ]

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(IdlSyntaxError):
            tokenize("interface @")


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [
            ("ident", "a"),
            ("ident", "b"),
        ]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [
            ("ident", "a"),
            ("ident", "b"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(IdlSyntaxError):
            tokenize("a /* never ends")

    def test_preprocessor_lines_skipped(self):
        assert kinds('#include "x.idl"\nfoo') == [("ident", "foo")]

    def test_hash_mid_line_is_an_error(self):
        with pytest.raises(IdlSyntaxError):
            tokenize("foo #bad")


class TestNumbers:
    def test_decimal(self):
        assert kinds("1024") == [("int", "1024")]

    def test_hex(self):
        assert kinds("0xFF 0x10") == [("int", "0xFF"), ("int", "0x10")]

    def test_malformed_hex(self):
        with pytest.raises(IdlSyntaxError):
            tokenize("0x")

    def test_float_forms(self):
        assert [k for k, _ in kinds("1.5 .25 2e3 1.5e-2")] == [
            "float"
        ] * 4

    def test_malformed_exponent(self):
        with pytest.raises(IdlSyntaxError):
            tokenize("1e+")


class TestStringsAndChars:
    def test_string_literal(self):
        assert kinds('"hello"') == [("string", "hello")]

    def test_string_escapes(self):
        assert kinds(r'"a\nb\t\"q\""') == [("string", 'a\nb\t"q"')]

    def test_unterminated_string(self):
        with pytest.raises(IdlSyntaxError):
            tokenize('"oops')

    def test_unknown_escape(self):
        with pytest.raises(IdlSyntaxError):
            tokenize(r'"\q"')

    def test_char_literal(self):
        assert kinds("'x'") == [("char", "x")]

    def test_char_escape(self):
        assert kinds(r"'\n'") == [("char", "\n")]

    def test_multichar_char_rejected(self):
        with pytest.raises(IdlSyntaxError):
            tokenize("'ab'")
