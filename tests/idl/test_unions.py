"""Union support across the whole pipeline: parse → analyze → CDR →
codegen → live invocation."""

import pytest

from repro import ORB, compile_idl
from repro.cdr import MarshalError, UnionTC, decode_value, encode_value
from repro.cdr.typecodes import TC_DOUBLE, TC_LONG, TC_STRING
from repro.idl.compiler import analyze_idl
from repro.idl.errors import IdlSemanticError, IdlSyntaxError
from repro.idl.parser import parse

BASIC_UNION = """
union number_or_text switch (long) {
    case 1: double number;
    case 2:
    case 3: string text;
    default: boolean flag;
};
"""


class TestUnionTypeCode:
    def test_arm_selection(self):
        tc = UnionTC(
            "u",
            TC_LONG,
            ((1, "a", TC_DOUBLE), (2, "b", TC_STRING)),
            ("c", TC_LONG),
        )
        assert tc.arm_for(1) == ("a", TC_DOUBLE)
        assert tc.arm_for(2) == ("b", TC_STRING)
        assert tc.arm_for(99) == ("c", TC_LONG)

    def test_no_default_no_match(self):
        tc = UnionTC("u", TC_LONG, ((1, "a", TC_DOUBLE),), None)
        with pytest.raises(MarshalError, match="no default"):
            tc.arm_for(5)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(MarshalError, match="duplicate"):
            UnionTC(
                "u", TC_LONG,
                ((1, "a", TC_DOUBLE), (1, "b", TC_STRING)), None,
            )

    def test_bad_discriminator_kind(self):
        with pytest.raises(MarshalError, match="discriminate"):
            UnionTC("u", TC_DOUBLE, ((1.0, "a", TC_LONG),), None)

    def test_value_shape_validated(self):
        tc = UnionTC("u", TC_LONG, ((1, "a", TC_DOUBLE),), None)
        with pytest.raises(MarshalError, match="expects"):
            tc.validate(3.0)
        with pytest.raises(MarshalError, match="expects"):
            tc.validate({"d": 1})

    def test_cdr_roundtrip_each_arm(self):
        tc = UnionTC(
            "u",
            TC_LONG,
            ((1, "a", TC_DOUBLE), (2, "b", TC_STRING)),
            ("c", TC_LONG),
        )
        for value in (
            {"d": 1, "v": 2.5},
            {"d": 2, "v": "text"},
            {"d": 42, "v": 7},
        ):
            assert decode_value(tc, encode_value(tc, value)) == value


class TestUnionParsing:
    def test_multi_label_case(self):
        decl = parse(BASIC_UNION).body[0]
        assert decl.name == "number_or_text"
        assert len(decl.cases) == 3
        assert len(decl.cases[1].labels) == 2
        assert decl.cases[2].is_default

    def test_empty_union_rejected(self):
        with pytest.raises(IdlSyntaxError, match="no cases"):
            parse("union u switch (long) {};")

    def test_member_needs_labels(self):
        with pytest.raises(IdlSyntaxError, match="case"):
            parse("union u switch (long) { double x; };")


class TestUnionSemantics:
    def test_labels_evaluated_and_typed(self):
        unit = analyze_idl(
            "const long TWO = 2;"
            "union u switch (long) { case TWO: double x; };"
        )
        tc = unit.find("u").typecode
        assert tc.cases[0][0] == 2

    def test_enum_discriminator(self):
        unit = analyze_idl(
            "enum color { RED, GREEN };"
            "union u switch (color) { case RED: long x; };"
        )
        tc = unit.find("u").typecode
        assert tc.discriminator.kind == "enum"
        assert tc.cases[0][0] == "RED"

    def test_label_type_mismatch(self):
        with pytest.raises(IdlSemanticError, match="discriminator"):
            analyze_idl(
                'union u switch (long) { case "nope": double x; };'
            )

    def test_duplicate_member_names(self):
        with pytest.raises(IdlSemanticError, match="twice"):
            analyze_idl(
                "union u switch (long) "
                "{ case 1: double x; case 2: long x; };"
            )

    def test_duplicate_labels(self):
        with pytest.raises(IdlSemanticError, match="twice"):
            analyze_idl(
                "union u switch (long) "
                "{ case 1: double x; case 1: long y; };"
            )

    def test_two_defaults_rejected(self):
        with pytest.raises(IdlSemanticError, match="two default"):
            analyze_idl(
                "union u switch (long) "
                "{ default: double x; default: long y; };"
            )

    def test_dsequence_member_rejected(self):
        with pytest.raises(IdlSemanticError, match="union members"):
            analyze_idl(
                "typedef dsequence<double> d;"
                "union u switch (long) { case 1: d x; };"
            )

    def test_float_discriminator_rejected(self):
        with pytest.raises(IdlSemanticError, match="discriminate"):
            analyze_idl(
                "union u switch (double) { case 1: long x; };"
            )

    def test_union_usable_as_member_type(self):
        unit = analyze_idl(
            BASIC_UNION + "struct holder { number_or_text item; };"
        )
        struct_tc = unit.find("holder").typecode
        assert struct_tc.fields[0][1].kind == "union"


class TestGeneratedUnion:
    def test_factory_and_helpers(self):
        m = compile_idl(BASIC_UNION)
        value = m.number_or_text(1, 2.5)
        assert value == {"d": 1, "v": 2.5}
        assert m.number_or_text.member_of(value) == "number"
        assert m.number_or_text.member_of(m.number_or_text(3, "x")) == "text"
        assert m.number_or_text.member_of(m.number_or_text(9, True)) == "flag"

    def test_make_asserts_member(self):
        m = compile_idl(BASIC_UNION)
        assert m.number_or_text.make("number", 1, 5.0)["v"] == 5.0
        with pytest.raises(ValueError, match="selects"):
            m.number_or_text.make("text", 1, 5.0)

    def test_invalid_construction(self):
        m = compile_idl(BASIC_UNION)
        bounded = compile_idl(
            "union u switch (long) { case 1: double x; };"
        )
        with pytest.raises(MarshalError):
            bounded.u(2, 1.0)  # no case, no default

    def test_live_invocation_roundtrip(self):
        m = compile_idl(
            """
            enum kind { NUMBER, TEXT };
            union payload switch (kind) {
                case NUMBER: double number;
                case TEXT:   string text;
            };
            interface carrier {
                payload swap(in payload value);
            };
            """
        )

        class Impl(m.carrier_skel):
            def swap(self, value):
                if value["d"] == "NUMBER":
                    return m.payload("TEXT", str(value["v"]))
                return m.payload("NUMBER", float(len(value["v"])))

        with ORB(timeout=20.0) as orb:
            orb.serve("u", lambda ctx: Impl(), 2)

            def client(c):
                proxy = m.carrier._spmd_bind("u", c.runtime)
                a = proxy.swap(m.payload("NUMBER", 2.5))
                b = proxy.swap(m.payload("TEXT", "hello"))
                return a, b

            results = orb.run_spmd_client(2, client)
            assert results[0] == (
                {"d": "TEXT", "v": "2.5"},
                {"d": "NUMBER", "v": 5.0},
            )
