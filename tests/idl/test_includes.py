"""Multi-file IDL compilation: #include expansion."""

import pytest

from repro.idl import preprocess_includes
from repro.idl.compiler import compile_idl_file
from repro.idl.errors import IdlError


@pytest.fixture()
def idl_tree(tmp_path):
    (tmp_path / "types.idl").write_text(
        "typedef dsequence<double> darray;\n", encoding="utf-8"
    )
    (tmp_path / "errors.idl").write_text(
        'exception failed { string why; };\n', encoding="utf-8"
    )
    (tmp_path / "service.idl").write_text(
        '#include "types.idl"\n'
        '#include "errors.idl"\n'
        "interface service {\n"
        "    void run(inout darray data) raises (failed);\n"
        "};\n",
        encoding="utf-8",
    )
    return tmp_path


class TestIncludes:
    def test_compile_file_with_includes(self, idl_tree):
        compiled = compile_idl_file(str(idl_tree / "service.idl"))
        assert hasattr(compiled.module, "service")
        assert hasattr(compiled.module, "darray")
        assert compiled.module.__name__ == "service"

    def test_each_file_included_once(self, idl_tree):
        # Both b.idl and c.idl include types.idl: diamond includes
        # must not redeclare 'darray'.
        (idl_tree / "b.idl").write_text(
            '#include "types.idl"\ntypedef darray alias_b;\n',
            encoding="utf-8",
        )
        (idl_tree / "c.idl").write_text(
            '#include "types.idl"\ntypedef darray alias_c;\n',
            encoding="utf-8",
        )
        (idl_tree / "main.idl").write_text(
            '#include "b.idl"\n#include "c.idl"\n'
            "interface i { void f(in alias_b x, in alias_c y); };\n",
            encoding="utf-8",
        )
        compiled = compile_idl_file(str(idl_tree / "main.idl"))
        assert hasattr(compiled.module, "i")

    def test_cycle_detected(self, idl_tree):
        (idl_tree / "x.idl").write_text(
            '#include "y.idl"\ntypedef long tx;\n', encoding="utf-8"
        )
        (idl_tree / "y.idl").write_text(
            '#include "x.idl"\ntypedef long ty;\n', encoding="utf-8"
        )
        with pytest.raises(IdlError, match="circular"):
            compile_idl_file(str(idl_tree / "x.idl"))

    def test_missing_include(self, idl_tree):
        (idl_tree / "broken.idl").write_text(
            '#include "ghost.idl"\ninterface i {};\n', encoding="utf-8"
        )
        with pytest.raises(IdlError, match="not found"):
            compile_idl_file(str(idl_tree / "broken.idl"))

    def test_include_search_path_order(self, idl_tree, tmp_path):
        other = tmp_path / "other"
        other.mkdir()
        (other / "shared.idl").write_text(
            "const long WHERE = 2;\n", encoding="utf-8"
        )
        (idl_tree / "shared.idl").write_text(
            "const long WHERE = 1;\n", encoding="utf-8"
        )
        (idl_tree / "uses.idl").write_text(
            '#include "shared.idl"\ninterface i {};\n', encoding="utf-8"
        )
        # The file's own directory wins.
        compiled = compile_idl_file(
            str(idl_tree / "uses.idl"), include_dirs=(str(other),)
        )
        assert compiled.module.WHERE == 1

    def test_other_hash_lines_still_skipped(self):
        text = preprocess_includes("#pragma prefix \"x\"\nconst long A = 1;")
        assert "#pragma" in text  # left for the lexer to ignore

    def test_cli_include_flag(self, idl_tree, tmp_path):
        import subprocess
        import sys

        out = tmp_path / "gen.py"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.idl",
                str(idl_tree / "service.idl"),
                "-o",
                str(out),
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "class service(_ClientProxy):" in out.read_text()
