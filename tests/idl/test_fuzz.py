"""Property/fuzz tests for the IDL compiler.

Strategy: generate structurally valid specifications from a grammar of
hypothesis strategies, then require the whole pipeline — parse,
analyze, generate, exec — to succeed, produce deterministic output,
and yield marshalable typecodes.
"""

import keyword

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdr import decode_value, encode_value
from repro.idl import compile_idl, generate_python
from repro.idl.errors import IdlError

_RESERVED = {
    "module", "interface", "typedef", "struct", "enum", "exception",
    "union", "switch", "case", "default", "const", "attribute",
    "readonly", "oneway", "raises", "in", "out", "inout", "void",
    "short", "long", "unsigned", "float", "double", "boolean", "char",
    "octet", "string", "sequence", "dsequence", "block", "proportions",
    "TRUE", "FALSE",
}

identifiers = st.from_regex(
    r"[a-z][a-z0-9_]{0,10}", fullmatch=True
).filter(lambda s: s not in _RESERVED and not keyword.iskeyword(s))

basic_types = st.sampled_from(
    [
        "short", "long", "long long", "unsigned short", "unsigned long",
        "float", "double", "boolean", "char", "octet", "string",
    ]
)

numeric_types = st.sampled_from(
    ["short", "long", "float", "double", "octet"]
)


@st.composite
def struct_decl(draw, name):
    members = draw(
        st.lists(identifiers, min_size=1, max_size=4, unique=True)
    )
    body = "".join(
        f"  {draw(basic_types)} {member};\n" for member in members
    )
    return f"struct {name} {{\n{body}}};\n"


@st.composite
def enum_decl(draw, name, tag):
    members = draw(
        st.lists(
            st.from_regex(r"[A-Z][A-Z0-9_]{0,8}", fullmatch=True).filter(
                lambda s: s not in _RESERVED
            ),
            min_size=1,
            max_size=5,
            unique=True,
        )
    )
    # Enum members enter the enclosing scope (CORBA), so tag them with
    # the declaration index to keep distinct enums from colliding.
    members = [f"K{tag}_{m}" for m in members]
    return f"enum {name} {{ {', '.join(members)} }};\n"


@st.composite
def typedef_decl(draw, name):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return f"typedef {draw(basic_types)} {name};\n"
    if kind == 1:
        bound = draw(st.integers(1, 999))
        return (
            f"typedef sequence<{draw(basic_types)}, {bound}> {name};\n"
        )
    bound = draw(st.integers(1, 4096))
    return f"typedef dsequence<{draw(numeric_types)}, {bound}> {name};\n"


@st.composite
def interface_decl(draw, name, known_types):
    ops = draw(
        st.lists(identifiers, min_size=1, max_size=3, unique=True)
    )
    body = []
    for op in ops:
        nparams = draw(st.integers(0, 3))
        params = []
        for p in range(nparams):
            direction = draw(st.sampled_from(["in", "out", "inout"]))
            type_name = draw(
                st.sampled_from(known_types) if known_types and draw(
                    st.booleans()
                ) else basic_types
            )
            params.append(f"{direction} {type_name} p{p}")
        returns = draw(st.sampled_from(["void", "long", "double"]))
        body.append(f"  {returns} {op}({', '.join(params)});\n")
    return f"interface {name} {{\n{''.join(body)}}};\n"


@st.composite
def specifications(draw):
    names = draw(
        st.lists(identifiers, min_size=1, max_size=5, unique=True)
    )
    parts = []
    plain_types: list[str] = []
    for i, name in enumerate(names):
        kind = draw(st.integers(0, 3)) if i < len(names) - 1 else 3
        if kind == 0:
            parts.append(draw(struct_decl(name)))
            plain_types.append(name)
        elif kind == 1:
            parts.append(draw(enum_decl(name, i)))
            plain_types.append(name)
        elif kind == 2:
            parts.append(draw(typedef_decl(name)))
        else:
            parts.append(draw(interface_decl(name, plain_types)))
    return "".join(parts)


class TestCompilerFuzz:
    @given(specifications())
    @settings(max_examples=60, deadline=None)
    def test_generated_specs_compile_end_to_end(self, source):
        compiled = compile_idl(source, module_name="fuzz_idl")
        # Every exported name resolves.
        for name in compiled.module.__all__:
            assert getattr(compiled.module, name) is not None

    @given(specifications())
    @settings(max_examples=30, deadline=None)
    def test_codegen_is_deterministic(self, source):
        assert generate_python(source) == generate_python(source)

    @given(specifications())
    @settings(max_examples=30, deadline=None)
    def test_generated_code_is_valid_python(self, source):
        compile(generate_python(source), "<fuzz>", "exec")

    @given(st.text(max_size=120))
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_text_never_crashes_unsafely(self, source):
        """Garbage input must produce IdlError, never an internal
        exception type."""
        try:
            compile_idl(source)
        except IdlError:
            pass
        except RecursionError:
            pass  # pathological nesting; acceptable

    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_fuzzed_dsequence_typedef_marshal_roundtrip(self, values):
        compiled = compile_idl(
            f"typedef dsequence<double, {max(1, len(values))}> t;"
        )
        tc = compiled.t.typecode
        data = np.asarray(values, dtype=np.float64)
        if len(data) > tc.bound:
            data = data[: tc.bound]
        result = decode_value(tc, encode_value(tc, data))
        np.testing.assert_array_equal(result, data)
